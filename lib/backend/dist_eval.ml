(* Real multi-process distributed evaluation of TFHE netlists.

   Where Sched_cpu *prices* the paper's Ray cluster (§IV-D, Fig. 10) through
   a cost model, this executor actually crosses the process boundary: it
   spawns N worker processes, ships the cloud keyset once at startup, and
   then drives the levelized wave schedule by sending each worker a shard
   of every wave's bootstrapped gates — input ciphertexts serialized
   through Wire inside length-prefixed frames over Unix socketpairs — and
   collecting the result ciphertexts at a wave barrier.

   Workers are spawned by re-executing the host binary (create_process /
   posix_spawn) with PYTFHE_DIST_WORKER set, not by Unix.fork: the OCaml 5
   runtime permanently forbids fork in any process that has ever created a
   domain, and Par_eval creates domains.  Host executables opt in by
   calling [worker_entry] before anything else in main; a spawned worker
   then serves the gate protocol on its stdin socket and never returns.
   The DRDY handshake below turns a host that forgot the hook into a
   prompt, explicit startup failure instead of a recursive process tree.

   The coordinator is built to survive its workers, not just to use them:

   - every outstanding request has a deadline; expiry triggers a bounded
     number of backoff extensions (a slow worker gets more time) before the
     worker is declared lost, SIGKILLed and its shard reassigned;
   - while waiting, the coordinator heartbeats worker processes with
     waitpid(WNOHANG), so a crashed worker is detected without waiting for
     the request timeout;
   - a reply that fails to parse (Wire.Corrupt, truncated payload, wrong
     arity) is counted, and the request is re-sent — corruption never
     propagates into the value table and never kills the coordinator;
   - loss of a worker degrades capacity gracefully: survivors absorb the
     shard, down to a single worker.  Only losing *every* worker raises.

   Because each gate runs the identical torus operation sequence as
   Tfhe_eval.apply_gate — only in another address space, with the operands
   round-tripped through the exact 32-bit wire encoding — the output
   ciphertexts are bit-exact with Tfhe_eval.run for any worker count and
   any fault pattern the executor survives. *)

module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Levelize = Pytfhe_circuit.Levelize
module Wire = Pytfhe_util.Wire
module Trace = Pytfhe_obs.Trace
open Pytfhe_tfhe

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

type fault_action =
  | Crash
  | Stall of float
  | Flip_reply
  | Truncate_reply

type fault = { victim : int; after_requests : int; action : fault_action }

let write_fault buf f =
  Wire.write_i64 buf f.victim;
  Wire.write_i64 buf f.after_requests;
  match f.action with
  | Crash -> Wire.write_u8 buf 0
  | Stall s ->
    Wire.write_u8 buf 1;
    Wire.write_f64 buf s
  | Flip_reply -> Wire.write_u8 buf 2
  | Truncate_reply -> Wire.write_u8 buf 3

let read_fault r =
  let victim = Wire.read_i64 r in
  let after_requests = Wire.read_i64 r in
  let action =
    match Wire.read_u8 r with
    | 0 -> Crash
    | 1 -> Stall (Wire.read_f64 r)
    | 2 -> Flip_reply
    | 3 -> Truncate_reply
    | v -> raise (Wire.Corrupt (Printf.sprintf "Dist_eval: unknown fault action %d" v))
  in
  { victim; after_requests; action }

(* ------------------------------------------------------------------ *)
(* Configuration and stats                                             *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;
  request_timeout : float;
  max_retries : int;
  backoff : float;
  heartbeat_interval : float;
  faults : fault list;
  array_frames : bool;
}

let config ?(request_timeout = 60.0) ?(max_retries = 2) ?(backoff = 2.0)
    ?(heartbeat_interval = 0.25) ?(faults = []) ?(array_frames = true) workers =
  if workers < 1 then invalid_arg "Dist_eval.config: workers must be >= 1";
  if request_timeout <= 0.0 then invalid_arg "Dist_eval.config: request_timeout must be > 0";
  if max_retries < 0 then invalid_arg "Dist_eval.config: max_retries must be >= 0";
  if backoff < 1.0 then invalid_arg "Dist_eval.config: backoff must be >= 1";
  { workers; request_timeout; max_retries; backoff; heartbeat_interval; faults; array_frames }

type stats = {
  workers_started : int;
  workers_lost : int;
  bootstraps_executed : int;
  nots_executed : int;
  requests_sent : int;
  retries : int;
  reassignments : int;
  corrupt_frames : int;
  heartbeat_misses : int;
  keyset_bytes : int;
  bytes_to_workers : int;
  bytes_from_workers : int;
  startup_time : float;
  dispatch_time : float;
  transfer_time : float;
  compute_time : float;
  wave_wall : float array;
  wave_width : int array;
  wall_time : float;
}

(* ------------------------------------------------------------------ *)
(* Framing: shared PTFD envelope (see Framing)                         *)
(* ------------------------------------------------------------------ *)

let frame_magic = Framing.frame_magic

exception Frame_closed = Framing.Frame_closed
exception Frame_timeout = Framing.Frame_timeout

let write_all = Framing.write_all
let write_frame = Framing.write_frame
let read_frame = Framing.read_frame

(* ------------------------------------------------------------------ *)
(* Worker process                                                      *)
(* ------------------------------------------------------------------ *)

(* DHEL hello frame: worker identity, the coordinator's transform tag,
   tracing plumbing (the coordinator's epoch makes worker timestamps
   directly comparable — both sides read the same machine clock), the
   fault schedule and the cloud keyset.  The explicit tag is validated
   against the transform embedded in the keyset's own parameters: a
   coordinator and worker that disagree about the polynomial-product
   backend must fail the handshake with [Wire.Corrupt], not trade
   ciphertexts whose spectra they would interpret differently. *)
let parse_hello r =
  Wire.read_magic r "DHEL";
  let index = Wire.read_i64 r in
  let transform =
    let code = Wire.read_u8 r in
    match Pytfhe_fft.Transform.kind_of_code code with
    | Some k -> k
    | None ->
      raise (Wire.Corrupt (Printf.sprintf "Dist_eval: unknown transform code %d" code))
  in
  let obs_on = Wire.read_bool r in
  let obs_epoch = Wire.read_f64 r in
  let faults = Array.to_list (Wire.read_array r read_fault) in
  let ck = Gates.read_cloud_keyset r in
  if ck.Gates.cloud_params.Params.transform <> transform then
    raise (Wire.Corrupt "Dist_eval: transform mismatch between DHEL tag and keyset");
  (index, obs_on, obs_epoch, faults, ck)

(* The worker is a stateless gate server: after the hello frame (identity,
   transform tag, fault schedule, cloud keyset) it answers DREQ frames —
   each a batch of (gate, input ciphertext, input ciphertext) triples —
   with DREP frames carrying the result ciphertexts plus the measured
   compute seconds.  All exits go through Unix._exit: the child must never
   run the parent's at_exit handlers or flush its inherited stdio
   buffers. *)
let worker_main fd =
  let hello = read_frame fd in
  let r = Wire.reader_of_string hello in
  let index, obs_on, obs_epoch, faults, ck = parse_hello r in
  (* Build the transform tables once, up front: the gate loop below must
     never find them missing (a worker that built tables mid-request would
     blow its first deadline on large rings). *)
  Params.precompute ck.Gates.cloud_params;
  let ctx = Gates.context ck in
  let wsink = if obs_on then Trace.create ~epoch:obs_epoch () else Trace.null in
  let wtr = Trace.new_track wsink ~name:(Printf.sprintf "worker %d" index) in
  (* ready: the keyset is parsed and the gate context built.  Also the
     coordinator's proof that the spawned binary really is a worker. *)
  let rdy = Buffer.create 8 in
  Wire.write_magic rdy "DRDY";
  ignore (write_frame fd (Buffer.to_bytes rdy));
  (* SoA request scratch, built on first DRQ2: the row-batched context and
     a staging array for sub-batches of at most [worker_batch_cap] gates.
     Legacy per-sample coordinators never pay for it. *)
  let worker_batch_cap = 32 in
  let soa_scratch =
    lazy
      (let n = ck.Gates.cloud_params.Params.lwe.Params.n in
       (Gates.batch_context ck ~cap:worker_batch_cap, Lwe_array.create ~n worker_batch_cap))
  in
  let served = ref 0 in
  let rec loop () =
    let payload = read_frame fd in
    if String.length payload < 4 then Unix._exit 4;
    (match String.sub payload 0 4 with
    | "DBYE" -> Unix._exit 0
    | ("DREQ" | "DRQ2") as magic ->
      let r = Wire.reader_of_string payload in
      Wire.read_magic r magic;
      let req_id = Wire.read_i64 r in
      incr served;
      let due = List.filter (fun f -> f.after_requests = !served) faults in
      if List.exists (fun f -> f.action = Crash) due then
        (* a genuine SIGKILL mid-wave: the request dies with us *)
        Unix.kill (Unix.getpid ()) Sys.sigkill;
      List.iter (fun f -> match f.action with Stall s -> Unix.sleepf s | _ -> ()) due;
      let boots, t0, t1, reply =
        if magic = "DREQ" then begin
          (* Record codes 0–127 are classic gates (two operand samples);
             128+arity (129–131) are programmable LUT cells: a u8 truth
             table then [arity] operand samples.  The coordinator ships
             arity-1 operands already as classic views; arity-2/3 operands
             arrive lutdom-encoded, exactly as [Gates.lut_cell_in] wants. *)
          let gates =
            Wire.read_array r (fun r ->
                let code = Wire.read_u8 r in
                if code >= 129 && code <= 131 then begin
                  let arity = code - 128 in
                  let table = Wire.read_u8 r in
                  if table lsr (1 lsl arity) <> 0 then
                    raise
                      (Wire.Corrupt
                         (Printf.sprintf "Dist_eval: lut%d table %#x out of range" arity
                            table));
                  let ops = Array.make arity (Lwe.read_sample r) in
                  for i = 1 to arity - 1 do
                    ops.(i) <- Lwe.read_sample r
                  done;
                  `Lut (arity, table, ops)
                end
                else begin
                  let a = Lwe.read_sample r in
                  let b = Lwe.read_sample r in
                  `Gate (code, a, b)
                end)
          in
          let t0 = Unix.gettimeofday () in
          let results =
            Array.map
              (function
                | `Gate (code, a, b) -> (
                  match Gate.of_code code with
                  | Some g -> Tfhe_eval.apply_gate ctx g a b
                  | None ->
                    raise (Wire.Corrupt (Printf.sprintf "Dist_eval: bad gate code %d" code)))
                | `Lut (arity, table, ops) -> Gates.lut_cell_in ctx ~arity ~table ops)
              gates
          in
          let t1 = Unix.gettimeofday () in
          let buf = Buffer.create 4096 in
          Wire.write_magic buf "DREP";
          Wire.write_i64 buf req_id;
          Wire.write_f64 buf (t1 -. t0);
          Wire.write_array buf Lwe.write_sample results;
          (Array.length gates, t0, t1, Buffer.to_bytes buf)
        end
        else begin
          (* The SoA shard: u8 gate codes, then the a- and b-operand waves as
             two flat Lwe_array frames — one bounds-checked blit each instead
             of per-sample framing.  Gates run through the row-batched
             kernels, so the worker materializes no per-gate records either;
             results are bit-exact with the scalar DREQ path. *)
          let codes = Wire.read_array r Wire.read_u8 in
          let va = Lwe_array.read r in
          let vb = Lwe_array.read r in
          let count = Array.length codes in
          if Lwe_array.length va <> count || Lwe_array.length vb <> count then
            raise (Wire.Corrupt "Dist_eval: array-frame operand count mismatch");
          if Lwe_array.dim va <> Lwe_array.dim vb then
            raise (Wire.Corrupt "Dist_eval: array-frame operand dimension mismatch");
          let plans =
            Array.map
              (fun code ->
                match Gate.of_code code with
                | Some g when not (Gate.is_unary g) -> Tfhe_eval.plan_of g
                | Some _ | None ->
                  raise (Wire.Corrupt (Printf.sprintf "Dist_eval: bad gate code %d" code)))
              codes
          in
          let bc, staging = Lazy.force soa_scratch in
          let t0 = Unix.gettimeofday () in
          let out = Lwe_array.create ~n:(Lwe_array.dim va) count in
          let pos = ref 0 in
          while !pos < count do
            let len = min worker_batch_cap (count - !pos) in
            let base = !pos in
            for i = 0 to len - 1 do
              Gates.combine_rows_into plans.(base + i) ~a:va ~arow:(base + i) ~b:vb
                ~brow:(base + i) ~dst:staging ~drow:i
            done;
            let outs = Gates.bootstrap_batch_rows bc (Lwe_array.slice staging ~pos:0 ~len) in
            Lwe_array.blit ~src:outs ~src_pos:0 ~dst:out ~dst_pos:base ~len;
            pos := base + len
          done;
          let t1 = Unix.gettimeofday () in
          let buf = Buffer.create 4096 in
          Wire.write_magic buf "DRP2";
          Wire.write_i64 buf req_id;
          Wire.write_f64 buf (t1 -. t0);
          Lwe_array.write buf out;
          (count, t0, t1, Buffer.to_bytes buf)
        end
      in
      (* Ship collected spans in a DTRC frame *before* the reply, so the
         coordinator has always consumed a shard's trace by the time it
         accepts the shard — a worker dying right after the reply (or
         sending a faulted one) loses at most its own last spans,
         truncating the trace but never corrupting it. *)
      if Trace.enabled wsink then begin
        let p = ck.Gates.cloud_params in
        let ep = Trace.epoch wsink in
        Trace.span wtr ~cat:"shard"
          ~name:(Printf.sprintf "req %d (%d gates)" req_id boots)
          ~t0:(t0 -. ep) ~t1:(t1 -. ep);
        Trace.counter wtr ~name:"bootstraps" (float_of_int boots);
        Trace.counter wtr ~name:"key_switches" (float_of_int boots);
        Trace.counter wtr ~name:"ffts"
          (float_of_int (boots * Exec_obs.ffts_per_bootstrap p));
        match Trace.flush wsink with
        | [] -> ()
        | events ->
          let tb = Buffer.create 1024 in
          Wire.write_magic tb "DTRC";
          Wire.write_i64 tb req_id;
          Wire.write_array tb Trace.write_event (Array.of_list events);
          ignore (write_frame fd (Buffer.to_bytes tb))
      end;
      if List.exists (fun f -> f.action = Flip_reply) due then begin
        (* Framing stays intact; the payload magic is flipped, so the
           coordinator's parser must reject the frame and re-request. *)
        Bytes.set reply 0 (Char.chr (Char.code (Bytes.get reply 0) lxor 0x20));
        ignore (write_frame fd reply)
      end
      else if List.exists (fun f -> f.action = Truncate_reply) due then begin
        (* Announce the full frame, deliver half of it, and die: the
           coordinator sees EOF mid-frame, never a hang. *)
        let len = Bytes.length reply in
        let header = Bytes.create 12 in
        Bytes.blit_string frame_magic 0 header 0 4;
        Bytes.set_int64_le header 4 (Int64.of_int len);
        write_all fd header 0 12;
        write_all fd reply 0 (len / 2);
        Unix._exit 3
      end
      else ignore (write_frame fd reply)
    | _ -> Unix._exit 4);
    loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

type worker = {
  w_index : int;
  pid : int;
  fd : Unix.file_descr;
  mutable alive : bool;
  mutable reaped : bool;
}

(* One unit of shard work, with operands already resolved to ciphertexts —
   exactly what the DREQ wire format carries, so shards are netlist-free
   and the same dispatch path serves both the materialised and the
   streaming executor. *)
type shard_item =
  | S_gate of { code : int; a : Lwe.sample; b : Lwe.sample }
      (** Classic bootstrapped gate; operands are classic views. *)
  | S_lut of { arity : int; table : int; ops : Lwe.sample array }
      (** LUT cell; arity-1 operand is a classic view, arity-2/3 operands
          are raw lutdom ciphertexts. *)

type shard = {
  items : shard_item array;
  dsts : int array;  (* destination keys, fed to [state.put] with results *)
  mutable owner : worker;
  mutable req_id : int;
  mutable deadline : float;
  mutable attempts : int;
  mutable sent_at : float;
}

type state = {
  cfg : config;
  lwe_n : int;
  mutable put : int -> Lwe.sample -> unit;  (* result writeback, per run *)
  members : worker array;
  obs : Trace.sink;
  wtracks : int array;  (* coordinator-side track id per worker index *)
  mutable next_req : int;
  (* counters *)
  mutable requests_sent : int;
  mutable retries : int;
  mutable reassignments : int;
  mutable corrupt_frames : int;
  mutable heartbeat_misses : int;
  mutable lost : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
  mutable t_dispatch : float;
  mutable t_transfer : float;
  mutable t_compute : float;
}

let live_workers st = Array.to_list st.members |> List.filter (fun w -> w.alive)

let reap w =
  if not w.reaped then begin
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
    w.reaped <- true
  end

let kill_worker w =
  if w.alive then begin
    w.alive <- false;
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try Unix.close w.fd with Unix.Unix_error _ -> ());
    reap w
  end

(* waitpid(WNOHANG) heartbeat: true iff the process is still running. *)
let process_running w =
  if not w.alive || w.reaped then false
  else
    match Unix.waitpid [ Unix.WNOHANG ] w.pid with
    | 0, _ -> true
    | _ -> w.reaped <- true; false
    | exception Unix.Unix_error _ -> w.reaped <- true; false

let worker_env_var = "PYTFHE_DIST_WORKER"

(* Host executables call this before anything else in main.  In a spawned
   worker it serves the gate protocol on the stdin socket and exits; in
   every other process it is a no-op. *)
let worker_entry () =
  match Sys.getenv_opt worker_env_var with
  | Some "1" ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* All exits go through Unix._exit: a worker must never run the host
       program's at_exit handlers or flush inherited stdio buffers. *)
    (try worker_main Unix.stdin with
    | Frame_closed -> Unix._exit 0 (* coordinator hung up: normal shutdown *)
    | _ -> Unix._exit 2)
  | Some _ | None -> ()

(* Re-exec the host binary with the worker marker set; the worker side of
   the socketpair becomes the child's stdin (sockets are bidirectional, so
   it carries replies too).  Stdout maps to our stderr so a stray print in
   the child can never corrupt the protocol stream.  The coordinator side
   is close-on-exec, so later spawns don't inherit it and EOF detection on
   a dead worker's socket stays crisp. *)
let spawn_worker ~index =
  let coord_fd, worker_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec coord_fd;
  let env = Array.append (Unix.environment ()) [| worker_env_var ^ "=1" |] in
  let exe = Sys.executable_name in
  let pid = Unix.create_process_env exe [| exe |] env worker_fd Unix.stderr Unix.stderr in
  Unix.close worker_fd;
  { w_index = index; pid; fd = coord_fd; alive = true; reaped = false }

let hello_bytes ~index ~transform ~obs ~faults ~keyset_blob =
  let buf = Buffer.create (String.length keyset_blob + 256) in
  Wire.write_magic buf "DHEL";
  Wire.write_i64 buf index;
  Wire.write_u8 buf (Pytfhe_fft.Transform.kind_code transform);
  Wire.write_bool buf (Trace.enabled obs);
  Wire.write_f64 buf (Trace.epoch obs);
  Wire.write_array buf write_fault (Array.of_list faults);
  Buffer.add_string buf keyset_blob;
  Buffer.to_bytes buf

(* Serialize and send one shard request; accounts dispatch time/bytes. *)
let send_shard st sh =
  let w = sh.owner in
  let t0 = Unix.gettimeofday () in
  st.next_req <- st.next_req + 1;
  sh.req_id <- st.next_req;
  let buf = Buffer.create 4096 in
  (* DRQ2's flat two-operand frames can't carry variable-arity LUT records;
     a shard containing any LUT cell falls back to per-record DREQ framing
     (classic-only shards keep the SoA fast path). *)
  let shard_has_lut =
    Array.exists (function S_lut _ -> true | S_gate _ -> false) sh.items
  in
  if st.cfg.array_frames && not shard_has_lut then begin
    (* SoA request: gate codes, then the two operand waves packed as flat
       Lwe_array frames — one bounds-checked blit per direction on the wire
       instead of per-sample framing. *)
    let count = Array.length sh.items in
    let va = Lwe_array.create ~n:st.lwe_n count in
    let vb = Lwe_array.create ~n:st.lwe_n count in
    let codes = Array.make count 0 in
    Array.iteri
      (fun i item ->
        match item with
        | S_gate { code; a; b } ->
          codes.(i) <- code;
          Lwe_array.set va i a;
          Lwe_array.set vb i b
        | S_lut _ -> assert false)
      sh.items;
    Wire.write_magic buf "DRQ2";
    Wire.write_i64 buf sh.req_id;
    Wire.write_array buf Wire.write_u8 codes;
    Lwe_array.write buf va;
    Lwe_array.write buf vb
  end
  else begin
    Wire.write_magic buf "DREQ";
    Wire.write_i64 buf sh.req_id;
    Wire.write_array buf
      (fun buf item ->
        match item with
        | S_gate { code; a; b } ->
          Wire.write_u8 buf code;
          Lwe.write_sample buf a;
          Lwe.write_sample buf b
        | S_lut { arity; table; ops } ->
          (* LUT record: code 128+arity, u8 table, then the operands
             (arity-1: classic view; arity-2/3: lutdom-encoded). *)
          Wire.write_u8 buf (128 + arity);
          Wire.write_u8 buf table;
          Array.iter (fun a -> Lwe.write_sample buf a) ops)
      sh.items
  end;
  let n = write_frame w.fd (Buffer.to_bytes buf) in
  let now = Unix.gettimeofday () in
  st.bytes_out <- st.bytes_out + n;
  st.t_dispatch <- st.t_dispatch +. (now -. t0);
  st.requests_sent <- st.requests_sent + 1;
  sh.sent_at <- now;
  sh.deadline <- now +. st.cfg.request_timeout

exception All_workers_lost

(* The shard's owner is gone: push the work onto the least-loaded
   survivor.  Raises All_workers_lost when nobody is left. *)
let rec reassign st pending sh =
  let load w = List.length (List.filter (fun q -> q.owner == w) !pending) in
  match live_workers st with
  | [] -> raise All_workers_lost
  | w0 :: rest ->
    let target =
      List.fold_left (fun best w -> if load w < load best then w else best) w0 rest
    in
    sh.owner <- target;
    sh.attempts <- 0;
    st.reassignments <- st.reassignments + 1;
    (try send_shard st sh
     with Frame_closed ->
       st.lost <- st.lost + 1;
       kill_worker target;
       (* the pool shrank under us: try the next survivor *)
       reassign st pending sh)

let declare_lost st pending w =
  if w.alive then begin
    st.lost <- st.lost + 1;
    kill_worker w
  end;
  let orphans = List.filter (fun q -> q.owner == w) !pending in
  List.iter (fun sh -> reassign st pending sh) orphans

(* Deadline expiry: a dead owner is replaced immediately; a live owner is
   granted [max_retries] backoff extensions (it may merely be slow) before
   being declared lost. *)
let on_timeout st pending sh =
  let w = sh.owner in
  if not (process_running w) then declare_lost st pending w
  else if sh.attempts < st.cfg.max_retries then begin
    sh.attempts <- sh.attempts + 1;
    st.retries <- st.retries + 1;
    sh.deadline <-
      Unix.gettimeofday () +. (st.cfg.request_timeout *. (st.cfg.backoff ** float_of_int sh.attempts))
  end
  else declare_lost st pending w

(* A reply arrived on [w.fd].  Parse defensively: any Wire.Corrupt /
   truncation / arity mismatch re-requests the shard instead of poisoning
   the value table. *)
let on_ready st pending w =
  let resend_corrupt sh =
    st.corrupt_frames <- st.corrupt_frames + 1;
    if sh.attempts < st.cfg.max_retries then begin
      sh.attempts <- sh.attempts + 1;
      st.retries <- st.retries + 1;
      try send_shard st sh
      with Frame_closed -> declare_lost st pending w
    end
    else declare_lost st pending w
  in
  (* One frame per call: a DTRC (optional worker trace, sent before its
     DREP) is merged and the select loop comes back for the reply still
     buffered on the socket. *)
  let parse_trc payload =
    match
      let r = Wire.reader_of_string payload in
      Wire.read_magic r "DTRC";
      let _req_id = Wire.read_i64 r in
      Wire.read_array r Trace.read_event
    with
    | events ->
      Trace.inject st.obs ~track:st.wtracks.(w.w_index) (Array.to_list events)
    | exception Wire.Corrupt _ ->
      (* a mangled trace frame costs events, never the run *)
      st.corrupt_frames <- st.corrupt_frames + 1
  in
  match
    let deadline = Unix.gettimeofday () +. st.cfg.request_timeout in
    let payload = read_frame ~deadline w.fd in
    st.bytes_in <- st.bytes_in + String.length payload + 12;
    if String.length payload >= 4 && String.sub payload 0 4 = "DTRC" then begin
      parse_trc payload;
      None
    end
    else if String.length payload >= 4 && String.sub payload 0 4 = "DRP2" then begin
      let r = Wire.reader_of_string payload in
      Wire.read_magic r "DRP2";
      let req_id = Wire.read_i64 r in
      let compute = Wire.read_f64 r in
      let arr = Lwe_array.read r in
      Some (req_id, compute, Lwe_array.to_samples arr)
    end
    else begin
      let r = Wire.reader_of_string payload in
      Wire.read_magic r "DREP";
      let req_id = Wire.read_i64 r in
      let compute = Wire.read_f64 r in
      let samples = Wire.read_array r Lwe.read_sample in
      Some (req_id, compute, samples)
    end
  with
  | exception Frame_closed -> declare_lost st pending w
  | exception Frame_timeout -> declare_lost st pending w
  | exception Wire.Corrupt _ ->
    (match List.find_opt (fun q -> q.owner == w) !pending with
    | Some sh -> resend_corrupt sh
    | None -> declare_lost st pending w)
  | None -> ()
  | Some (req_id, compute, samples) -> (
    match List.find_opt (fun q -> q.owner == w && q.req_id = req_id) !pending with
    | None -> () (* stale reply from a superseded request: drop *)
    | Some sh ->
      if Array.length samples <> Array.length sh.items then resend_corrupt sh
      else begin
        Array.iteri (fun i dst -> st.put dst samples.(i)) sh.dsts;
        let now = Unix.gettimeofday () in
        st.t_compute <- st.t_compute +. compute;
        st.t_transfer <- st.t_transfer +. Float.max 0.0 (now -. sh.sent_at -. compute);
        pending := List.filter (fun q -> q != sh) !pending
      end)

let shards_of items dsts k =
  let width = Array.length items in
  let k = max 1 (min k width) in
  Array.init k (fun d ->
      let lo = d * width / k and hi = (d + 1) * width / k in
      (Array.sub items lo (hi - lo), Array.sub dsts lo (hi - lo)))

(* Fan one wave's items out over the live workers and run the select loop
   until every shard has been answered (results land through [st.put]). *)
let dispatch st wave_items wave_dsts =
  if Array.length wave_items > 0 then begin
    let live = live_workers st in
    if live = [] then raise All_workers_lost;
    let chunks = shards_of wave_items wave_dsts (List.length live) in
    let owners = Array.of_list live in
    let pending = ref [] in
    Array.iteri
      (fun d (items, dsts) ->
        let sh =
          { items; dsts; owner = owners.(d); req_id = 0; deadline = infinity;
            attempts = 0; sent_at = 0.0 }
        in
        pending := sh :: !pending)
      chunks;
    (* Initial sends, tolerating workers that died since the last wave.
       declare_lost may already have re-sent a shard through reassignment,
       so only shards still carrying req_id = 0 go out here. *)
    List.iter
      (fun sh ->
        if sh.req_id = 0 then
          try send_shard st sh
          with Frame_closed -> declare_lost st pending sh.owner)
      !pending;
    while !pending <> [] do
      let now = Unix.gettimeofday () in
      List.iter (fun sh -> if now >= sh.deadline then on_timeout st pending sh) !pending;
      if !pending <> [] then begin
        let fds =
          List.sort_uniq compare (List.map (fun sh -> sh.owner.fd) !pending)
        in
        let next_deadline =
          List.fold_left (fun acc sh -> Float.min acc sh.deadline) infinity !pending
        in
        let tmo =
          Float.max 0.005
            (Float.min st.cfg.heartbeat_interval (next_deadline -. Unix.gettimeofday ()))
        in
        match Unix.select fds [] [] tmo with
        | [], _, _ ->
          (* heartbeat: catch crashed workers early, before their deadline *)
          List.iter
            (fun sh ->
              if sh.owner.alive && not (process_running sh.owner) then begin
                st.heartbeat_misses <- st.heartbeat_misses + 1;
                declare_lost st pending sh.owner
              end)
            !pending
        | ready, _, _ ->
          List.iter
            (fun fd ->
              match List.find_opt (fun sh -> sh.owner.fd = fd && sh.owner.alive) !pending with
              | Some sh -> on_ready st pending sh.owner
              | None -> ())
            ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* a descriptor died under select: sweep for dead owners *)
          List.iter
            (fun sh ->
              if sh.owner.alive && not (process_running sh.owner) then begin
                st.heartbeat_misses <- st.heartbeat_misses + 1;
                declare_lost st pending sh.owner
              end)
            !pending
      end
    done
  end

let shutdown members =
  Array.iter
    (fun w ->
      if w.alive then begin
        let bye = Buffer.create 8 in
        Wire.write_magic bye "DBYE";
        (try ignore (write_frame w.fd (Buffer.to_bytes bye)) with _ -> ());
        (try Unix.close w.fd with Unix.Unix_error _ -> ());
        w.alive <- false;
        (* DBYE exits promptly; SIGKILL covers a worker wedged in a fault *)
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap w
      end
      else reap w)
    members

(* A live worker pool plus its dispatch state: the startup half of a run
   (sigpipe, transform tables, spawn, hello, DRDY barrier), reusable by
   both the materialised and the streaming executor. *)
type session = {
  s_cloud : Gates.cloud_keyset;
  s_st : state;
  s_members : worker array;
  s_keyset_bytes : int;
  s_started : float;  (* wall clock when the session began *)
  s_startup : float;  (* seconds to bring the pool up *)
  s_restore : unit -> unit;
}

let session_start ?(obs = Trace.null) cfg cloud =
  let start = Unix.gettimeofday () in
  let previous_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let restore_sigpipe () =
    match previous_sigpipe with
    | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
    | None -> ()
  in
  (* Coordinator-side transform tables, built before any worker process is
     spawned: the coordinator itself only reads/writes ciphertexts, but
     [Gates.constant] and the tests touch the evaluation pipeline, and the
     precompute must not race anything. *)
  Params.precompute cloud.Gates.cloud_params;
  (* Ship the keyset once: serialize it up front, reuse the blob per worker. *)
  let keyset_blob =
    let buf = Buffer.create (1 lsl 20) in
    Gates.write_cloud_keyset buf cloud;
    Buffer.contents buf
  in
  let members = Array.init cfg.workers (fun i -> spawn_worker ~index:i) in
  let wtracks =
    Array.init cfg.workers (fun i ->
        Trace.external_track obs ~name:(Printf.sprintf "worker %d" i))
  in
  let st =
    {
      cfg;
      lwe_n = cloud.Gates.cloud_params.Params.lwe.Params.n;
      put = (fun _ _ -> ());
      members;
      obs;
      wtracks;
      next_req = 0;
      requests_sent = 0;
      retries = 0;
      reassignments = 0;
      corrupt_frames = 0;
      heartbeat_misses = 0;
      lost = 0;
      bytes_out = 0;
      bytes_in = 0;
      t_dispatch = 0.0;
      t_transfer = 0.0;
      t_compute = 0.0;
    }
  in
  (try
     (* hello: worker identity + fault schedule + the cloud keyset *)
     Array.iter
       (fun w ->
         let faults = List.filter (fun f -> f.victim = w.w_index) cfg.faults in
         let hello =
           hello_bytes ~index:w.w_index
             ~transform:cloud.Gates.cloud_params.Params.transform ~obs ~faults ~keyset_blob
         in
         try
           let n = write_frame w.fd hello in
           st.bytes_out <- st.bytes_out + n
         with Frame_closed ->
           st.lost <- st.lost + 1;
           kill_worker w)
       members;
     (* DRDY barrier: every worker parses the keyset (in parallel) and
        acknowledges.  A spawned binary that is not actually a worker —
        the host forgot to call [worker_entry] — answers with garbage or
        silence and is culled here, before any gate is risked on it. *)
     let ready_deadline = Unix.gettimeofday () +. Float.max 60.0 cfg.request_timeout in
     Array.iter
       (fun w ->
         if w.alive then
         match read_frame ~deadline:ready_deadline w.fd with
         | payload when String.length payload >= 4 && String.sub payload 0 4 = "DRDY" ->
           st.bytes_in <- st.bytes_in + String.length payload + 12
         | _ | (exception Frame_closed) | (exception Frame_timeout)
         | (exception Wire.Corrupt _) ->
           st.lost <- st.lost + 1;
           kill_worker w)
       members;
     if live_workers st = [] then
       failwith
         "Dist_eval.run: no worker came up — does the host executable call \
          Dist_eval.worker_entry at the start of main?"
   with exn ->
     shutdown members;
     restore_sigpipe ();
     raise exn);
  {
    s_cloud = cloud;
    s_st = st;
    s_members = members;
    s_keyset_bytes = String.length keyset_blob;
    s_started = start;
    s_startup = Unix.gettimeofday () -. start;
    s_restore = restore_sigpipe;
  }

let session_shutdown s =
  shutdown s.s_members;
  s.s_restore ()

let run_legacy ?(obs = Trace.null) cfg cloud net inputs =
  let input_list = Netlist.inputs net in
  if Array.length inputs <> List.length input_list then
    invalid_arg "Dist_eval.run: input arity mismatch";
  let session = session_start ~obs cfg cloud in
  let st = session.s_st in
  let start = session.s_started in
  Fun.protect
    ~finally:(fun () -> session_shutdown session)
    (fun () ->
      let startup_time = session.s_startup in
      let values = Array.make (Netlist.node_count net) None in
      st.put <- (fun id v -> values.(id) <- Some v);
      List.iteri (fun i (_, id) -> values.(id) <- Some inputs.(i)) input_list;
      for id = 0 to Netlist.node_count net - 1 do
        match Netlist.kind net id with
        | Netlist.Const b -> values.(id) <- Some (Gates.constant cloud b)
        | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> ()
      done;
      (* Shard items carry resolved operands: the classic view for gate
         fan-ins and arity-1 cells, raw lutdom ciphertexts for multi-input
         cell operands — the same resolution [send_shard] used to do
         in-line when shards still referenced the netlist. *)
      let classic id = Tfhe_eval.classic_view net values id in
      let items_of_wave par =
        Array.map
          (fun id ->
            match Netlist.kind net id with
            | Netlist.Gate (g, a, b) ->
              S_gate { code = Gate.to_code g; a = classic a; b = classic b }
            | Netlist.Lut { table; ins } ->
              let arity = Array.length ins in
              let ops =
                if arity = 1 then [| classic ins.(0) |]
                else Array.map (fun a -> Option.get values.(a)) ins
              in
              S_lut { arity; table; ops }
            | Netlist.Input _ | Netlist.Const _ -> assert false)
          par
      in
      let sched = Levelize.run net in
      let waves = Levelize.waves sched net in
      let wave_wall = Array.make (Array.length waves) 0.0 in
      let wave_width =
        Array.map (fun w -> Array.length w.Levelize.parallel) waves
      in
      let bootstraps = ref 0 and nots = ref 0 in
      let traced = Trace.enabled obs in
      let ep = Trace.epoch obs in
      let wave_tr = Trace.new_track obs ~name:"coordinator" in
      if traced then Exec_obs.noise_gauges wave_tr cloud.Gates.cloud_params;
      (try
         Array.iteri
           (fun i wave ->
             let t0 = Unix.gettimeofday () in
             let a0 = if traced then Exec_obs.alloc_words () else 0.0 in
             let out0 = st.bytes_out and in0 = st.bytes_in in
             let retries0 = st.retries and reassign0 = st.reassignments in
             let corrupt0 = st.corrupt_frames and hb0 = st.heartbeat_misses in
             dispatch st (items_of_wave wave.Levelize.parallel) wave.Levelize.parallel;
             bootstraps := !bootstraps + Array.length wave.Levelize.parallel;
             let nots0 = !nots in
             Array.iter
               (fun id ->
                 match Netlist.kind net id with
                 | Netlist.Gate (g, a, _) when Gate.is_unary g ->
                   values.(id) <- Some (Lwe.neg (classic a));
                   incr nots
                 | Netlist.Gate _ | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ ->
                   assert false)
               wave.Levelize.inline;
             let t1 = Unix.gettimeofday () in
             wave_wall.(i) <- t1 -. t0;
             if traced then begin
               let width = Array.length wave.Levelize.parallel in
               Trace.span wave_tr ~cat:"wave"
                 ~name:(Printf.sprintf "wave %d" i)
                 ~t0:(t0 -. ep) ~t1:(t1 -. ep);
               (* bootstraps/key_switches/ffts come from the worker-side
                  shard counters (shipped in DTRC frames), which count
                  where the gates actually ran — a retried shard is
                  re-counted by whichever worker redid it.  Emitting them
                  here too would double every one of them. *)
               Trace.counter wave_tr ~name:"nots" (float_of_int (!nots - nots0));
               Trace.counter wave_tr ~name:"wave_width" (float_of_int width);
               Trace.counter wave_tr ~name:"alloc_words"
                 (Exec_obs.alloc_words () -. a0);
               let c name v =
                 Trace.counter wave_tr ~name (float_of_int v)
               in
               c "bytes_to_workers" (st.bytes_out - out0);
               c "bytes_from_workers" (st.bytes_in - in0);
               c "retries" (st.retries - retries0);
               c "reassignments" (st.reassignments - reassign0);
               c "corrupt_frames" (st.corrupt_frames - corrupt0);
               c "heartbeat_misses" (st.heartbeat_misses - hb0);
               (* the wave barrier just passed: every accepted shard's
                  DTRC has been merged, nothing else is in flight *)
               Trace.drain obs
             end)
           waves
       with All_workers_lost ->
         failwith "Dist_eval.run: all workers lost (crashed or unresponsive)");
      let outputs =
        Netlist.outputs net
        |> List.map (fun (_, id) -> classic id)
        |> Array.of_list
      in
      ( outputs,
        {
          workers_started = cfg.workers;
          workers_lost = st.lost;
          bootstraps_executed = !bootstraps;
          nots_executed = !nots;
          requests_sent = st.requests_sent;
          retries = st.retries;
          reassignments = st.reassignments;
          corrupt_frames = st.corrupt_frames;
          heartbeat_misses = st.heartbeat_misses;
          keyset_bytes = session.s_keyset_bytes;
          bytes_to_workers = st.bytes_out;
          bytes_from_workers = st.bytes_in;
          startup_time;
          dispatch_time = st.t_dispatch;
          transfer_time = st.t_transfer;
          compute_time = st.t_compute;
          wave_wall;
          wave_width;
          wall_time = Unix.gettimeofday () -. start;
        } ))

let pp_stats fmt s =
  Format.fprintf fmt
    "workers=%d (%d lost) bootstraps=%d nots=%d requests=%d retries=%d reassignments=%d \
     corrupt=%d hb-misses=%d wall=%.3fs dispatch=%.3fs transfer=%.3fs compute=%.3fs \
     sent=%dB recv=%dB"
    s.workers_started s.workers_lost s.bootstraps_executed s.nots_executed s.requests_sent
    s.retries s.reassignments s.corrupt_frames s.heartbeat_misses s.wall_time
    s.dispatch_time s.transfer_time s.compute_time s.bytes_to_workers s.bytes_from_workers

let run ?(opts = Exec_opts.default) cfg cloud net inputs =
  Exec_opts.check_scalar_only ~who:"Dist_eval.run" opts;
  run_legacy ~obs:opts.Exec_opts.obs cfg cloud net inputs

(* --- Streaming execution --------------------------------------------------

   Distributed execution of a streamed binary: the segmented wave driver
   resolves operands as the stream arrives, and each wave's tasks convert
   directly into shard items — the DREQ wire format always carried resolved
   ciphertexts, so the worker protocol is unchanged and workers stay
   netlist-free either way.  Fault tolerance (deadlines, retries,
   reassignment, heartbeats) is the same [dispatch] loop as [run]. *)

let run_stream ?(opts = Exec_opts.default) ?window cfg cloud read inputs =
  Exec_opts.check_scalar_only ~who:"Dist_eval.run_stream" opts;
  let obs = opts.Exec_opts.obs in
  let session = session_start ~obs cfg cloud in
  let st = session.s_st in
  Fun.protect
    ~finally:(fun () -> session_shutdown session)
    (fun () ->
      (* The driver evaluates inline NOTs coordinator-side; a scalar
         context exists only as the safety net behind [v_lut], which the
         wave contract never exercises. *)
      let ctx = lazy (Gates.context cloud) in
      let run_wave tasks =
        let total = Array.length tasks in
        let items =
          Array.map
            (function
              | Stream_exec.T_gate { gate; a; b } ->
                S_gate { code = Gate.to_code gate; a; b }
              | Stream_exec.T_lut { arity; table; operands; _ } ->
                S_lut { arity; table; ops = operands })
            tasks
        in
        let out = Array.make total None in
        st.put <- (fun i v -> out.(i) <- Some v);
        dispatch st items (Array.init total Fun.id);
        Array.map (function Some v -> v | None -> assert false) out
      in
      let ops =
        {
          Stream_exec.v_gate =
            (fun g a b ->
              match g with
              | Gate.Not -> Lwe.neg a
              | _ -> Tfhe_eval.apply_gate (Lazy.force ctx) g a b);
          v_input =
            (fun i ->
              if i >= Array.length inputs then
                invalid_arg "Dist_eval.run_stream: wrong number of inputs for the stream"
              else inputs.(i));
          v_lut =
            (fun ~arity ~table ops ->
              Gates.lut_cell_in (Lazy.force ctx) ~arity ~table ops);
          v_lut_view = Gates.lut_to_classic;
        }
      in
      let outputs, ws =
        try Stream_exec.run_waves ~obs ?window ~run_wave ops read
        with All_workers_lost ->
          failwith "Dist_eval.run_stream: all workers lost (crashed or unresponsive)"
      in
      ( outputs,
        {
          workers_started = cfg.workers;
          workers_lost = st.lost;
          bootstraps_executed = ws.Stream_exec.bootstraps_run;
          nots_executed = ws.Stream_exec.nots_run;
          requests_sent = st.requests_sent;
          retries = st.retries;
          reassignments = st.reassignments;
          corrupt_frames = st.corrupt_frames;
          heartbeat_misses = st.heartbeat_misses;
          keyset_bytes = session.s_keyset_bytes;
          bytes_to_workers = st.bytes_out;
          bytes_from_workers = st.bytes_in;
          startup_time = session.s_startup;
          dispatch_time = st.t_dispatch;
          transfer_time = st.t_transfer;
          compute_time = st.t_compute;
          wave_wall = ws.Stream_exec.wave_wall;
          wave_width = ws.Stream_exec.wave_widths;
          wall_time = Unix.gettimeofday () -. session.s_started;
        } ))
