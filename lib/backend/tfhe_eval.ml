module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Levelize = Pytfhe_circuit.Levelize
module Trace = Pytfhe_obs.Trace
open Pytfhe_tfhe

type stats = {
  bootstraps_executed : int;
  nots_executed : int;
  wall_time : float;
  wave_wall : float array;
  wave_width : int array;
  batch_size : int;
  batch_launches : int;
  bsk_bytes_streamed : int;
  ks_bytes_streamed : int;
}

let gate_of g =
  match g with
  | Gate.Nand -> Gates.nand_gate
  | Gate.And -> Gates.and_gate
  | Gate.Or -> Gates.or_gate
  | Gate.Nor -> Gates.nor_gate
  | Gate.Xnor -> Gates.xnor_gate
  | Gate.Xor -> Gates.xor_gate
  | Gate.Not -> fun ck a _ -> Gates.not_gate ck a
  | Gate.Andny -> Gates.andny_gate
  | Gate.Andyn -> Gates.andyn_gate
  | Gate.Orny -> Gates.orny_gate
  | Gate.Oryn -> Gates.oryn_gate

let apply_gate ctx g a b =
  match g with
  | Gate.Nand -> Gates.nand_gate_in ctx a b
  | Gate.And -> Gates.and_gate_in ctx a b
  | Gate.Or -> Gates.or_gate_in ctx a b
  | Gate.Nor -> Gates.nor_gate_in ctx a b
  | Gate.Xnor -> Gates.xnor_gate_in ctx a b
  | Gate.Xor -> Gates.xor_gate_in ctx a b
  | Gate.Not -> Lwe.neg a
  | Gate.Andny -> Gates.andny_gate_in ctx a b
  | Gate.Andyn -> Gates.andyn_gate_in ctx a b
  | Gate.Orny -> Gates.orny_gate_in ctx a b
  | Gate.Oryn -> Gates.oryn_gate_in ctx a b

(* The linear phase combination of a bootstrapped gate, as data — shared
   with [Par_eval]'s batched path.  [Not] has no bootstrap, so no plan. *)
let plan_of g =
  match g with
  | Gate.Nand -> Gates.nand_plan
  | Gate.And -> Gates.and_plan
  | Gate.Or -> Gates.or_plan
  | Gate.Nor -> Gates.nor_plan
  | Gate.Xnor -> Gates.xnor_plan
  | Gate.Xor -> Gates.xor_plan
  | Gate.Andny -> Gates.andny_plan
  | Gate.Andyn -> Gates.andyn_plan
  | Gate.Orny -> Gates.orny_plan
  | Gate.Oryn -> Gates.oryn_plan
  | Gate.Not -> invalid_arg "Tfhe_eval.plan_of: Not is not a bootstrapped gate"

let prepare net inputs ~who =
  let input_list = Netlist.inputs net in
  if Array.length inputs <> List.length input_list then
    invalid_arg (who ^ ": input arity mismatch");
  let n = Netlist.node_count net in
  let values : Lwe.sample option array = Array.make n None in
  List.iteri (fun i (_, id) -> values.(id) <- Some inputs.(i)) input_list;
  values

(* LUT cells produce lutdom-encoded ciphertexts; every classic consumer
   (gate operand, NOT, primary output) reads them through the free
   lutdom → classic view.  The view is a deterministic linear map, so
   materialising it per use keeps all execution paths bit-exact. *)
let classic_view net values id =
  let v = Option.get values.(id) in
  if Netlist.is_lut net id then Gates.lut_to_classic v else v

let collect net values =
  Netlist.outputs net
  |> List.map (fun (_, id) -> classic_view net values id)
  |> Array.of_list

(* Rotation memo key: multi-input cells over the same operand tuple share
   one blind rotation (the indicators depend only on the operands). *)
let lut_key ins =
  let get i = if Array.length ins > i then ins.(i) else -1 in
  (Array.length ins, ins.(0), get 1, get 2)

(* Scalar evaluation of one LUT cell, with rotation sharing through
   [rotations]. Returns the number of fresh rotations performed (0 or 1). *)
let apply_lut_node net values ctx rotations id ~table ins =
  let arity = Array.length ins in
  if arity = 1 then begin
    values.(id) <- Some (Gates.lut1_in ctx ~table (classic_view net values ins.(0)));
    1
  end
  else begin
    let key = lut_key ins in
    let fresh = ref 0 in
    let ind =
      match Hashtbl.find_opt rotations key with
      | Some ind -> ind
      | None ->
        let ops = Array.map (fun a -> Option.get values.(a)) ins in
        let ind = Gates.lut_indicators_in ctx ~arity ops in
        Hashtbl.add rotations key ind;
        fresh := 1;
        ind
    in
    values.(id) <- Some (Gates.lut_select_in ctx ~msize:(1 lsl arity) ~table ind);
    !fresh
  end

(* The untraced id-order walk: ids are topologically sorted by
   construction, so a single pass suffices.  This is the hot path — it
   must not pay for observability beyond the one [Trace.enabled] load in
   [run]. *)
let run_untraced cloud net values =
  let ctx = Gates.default_context cloud in
  let rotations = Hashtbl.create 64 in
  let bootstraps = ref 0 and nots = ref 0 in
  for id = 0 to Netlist.node_count net - 1 do
    match Netlist.kind net id with
    | Netlist.Input _ -> ()
    | Netlist.Const b -> values.(id) <- Some (Gates.constant cloud b)
    | Netlist.Gate (g, a, b) ->
      let va = classic_view net values a and vb = classic_view net values b in
      if Gate.is_unary g then incr nots else incr bootstraps;
      values.(id) <- Some (apply_gate ctx g va vb)
    | Netlist.Lut { table; ins } ->
      bootstraps := !bootstraps + apply_lut_node net values ctx rotations id ~table ins
  done;
  (!bootstraps, !nots, [||], [||])

(* The traced walk evaluates wave by wave instead of in id order, so each
   wave gets one well-delimited span.  Gate results depend only on the
   operand ciphertexts, so any topological order produces identical
   outputs — the traced-vs-untraced qcheck suite holds this to bit
   exactness. *)
let run_traced obs cloud net values =
  let ctx = Gates.default_context cloud in
  let sched = Levelize.run net in
  let waves = Levelize.waves sched net in
  let nwaves = Array.length waves in
  let wave_wall = Array.make nwaves 0.0 in
  let wave_width = Array.map (fun w -> Array.length w.Levelize.parallel) waves in
  for id = 0 to Netlist.node_count net - 1 do
    match Netlist.kind net id with
    | Netlist.Const b -> values.(id) <- Some (Gates.constant cloud b)
    | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> ()
  done;
  let tr = Trace.new_track obs ~name:"cpu" in
  Exec_obs.noise_gauges tr cloud.Gates.cloud_params;
  let rotations = Hashtbl.create 64 in
  let bootstraps = ref 0 and nots = ref 0 in
  Array.iteri
    (fun w wave ->
      let t0 = Trace.now obs in
      let a0 = Exec_obs.alloc_words () in
      let wb = ref 0 and wn = ref 0 in
      let eval id =
        match Netlist.kind net id with
        | Netlist.Gate (g, a, b) ->
          let va = classic_view net values a and vb = classic_view net values b in
          if Gate.is_unary g then incr wn else incr wb;
          values.(id) <- Some (apply_gate ctx g va vb)
        | Netlist.Lut { table; ins } ->
          wb := !wb + apply_lut_node net values ctx rotations id ~table ins
        | Netlist.Input _ | Netlist.Const _ -> assert false
      in
      Array.iter eval wave.Levelize.parallel;
      Array.iter eval wave.Levelize.inline;
      let t1 = Trace.now obs in
      wave_wall.(w) <- t1 -. t0;
      bootstraps := !bootstraps + !wb;
      nots := !nots + !wn;
      Trace.span tr ~cat:"wave" ~name:(Printf.sprintf "wave %d" w) ~t0 ~t1;
      Exec_obs.wave_counters tr cloud.Gates.cloud_params ~bootstraps:!wb
        ~nots:!wn
        ~width:wave_width.(w)
        ~alloc_words:(Exec_obs.alloc_words () -. a0);
      Trace.drain obs)
    waves;
  (!bootstraps, !nots, wave_wall, wave_width)

(* Wave-batched LUT cells.  Multi-input cells are grouped by operand tuple
   in first-appearance (id) order — one rotation per group, every member
   table selected from the shared indicators — and arity-1 cells become
   sign jobs of the same mixed batch.  Works over get/set closures so the
   record and SoA walks share it; the mixed-job kernel is bit-exact with
   the scalar cells.  Returns the rotation count. *)
type lut_cell_build =
  | B_sign of { node : Netlist.id; table : int; operand : Netlist.id }
  | B_group of {
      ins : Netlist.id array;
      mutable tables : int list;  (* reversed *)
      mutable nodes : Netlist.id list;  (* reversed, aligned with tables *)
    }

let build_lut_cells net lut_ids =
  let ds = ref [] in
  let groups = Hashtbl.create 16 in
  Array.iter
    (fun id ->
      match Netlist.kind net id with
      | Netlist.Lut { table; ins } when Array.length ins = 1 ->
        ds := B_sign { node = id; table; operand = ins.(0) } :: !ds
      | Netlist.Lut { table; ins } -> (
        let key = lut_key ins in
        match Hashtbl.find_opt groups key with
        | Some (B_group g) ->
          g.tables <- table :: g.tables;
          g.nodes <- id :: g.nodes
        | Some (B_sign _) -> assert false
        | None ->
          let g = B_group { ins; tables = [ table ]; nodes = [ id ] } in
          Hashtbl.add groups key g;
          ds := g :: !ds)
      | _ -> assert false)
    lut_ids;
  Array.of_list (List.rev !ds)

(* Batched execution of built cells through the mixed-job kernel, in
   launches of at most [batch] cells. *)
let run_lut_cells net ~get ~set bc ~batch ~n ds =
  let classic_of id =
    let v = get id in
    if Netlist.is_lut net id then Gates.lut_to_classic v else v
  in
  let total = Array.length ds in
  let pos = ref 0 in
  while !pos < total do
    let len = min batch (total - !pos) in
    let chunk = Array.sub ds !pos len in
    let cells =
      Array.map
        (function
          | B_sign { table; _ } -> Gates.sign_cell ~table
          | B_group g ->
            Gates.Cell_lut
              { arity = Array.length g.ins; tables = Array.of_list (List.rev g.tables) })
        chunk
    in
    let combined =
      Array.map
        (function
          | B_sign { operand; _ } -> classic_of operand
          | B_group g -> Gates.lut_combine ~n ~arity:(Array.length g.ins) (Array.map get g.ins))
        chunk
    in
    let outs = Gates.bootstrap_batch_cells bc cells combined in
    Array.iteri
      (fun j d ->
        match d with
        | B_sign { node; _ } -> set node outs.(j).(0)
        | B_group g -> List.iteri (fun k nid -> set nid outs.(j).(k)) (List.rev g.nodes))
      chunk;
    pos := !pos + len
  done;
  total

(* Scalar execution of built cells: one indicator rotation per group,
   one select + key switch per member.  Same operation sequence as the
   batched kernel, hence bit-exact with it. *)
let run_lut_cells_scalar net ~get ~set ctx ds =
  let classic_of id =
    let v = get id in
    if Netlist.is_lut net id then Gates.lut_to_classic v else v
  in
  Array.iter
    (function
      | B_sign { node; table; operand } ->
        set node (Gates.lut1_in ctx ~table (classic_of operand))
      | B_group g ->
        let arity = Array.length g.ins in
        let ind = Gates.lut_indicators_in ctx ~arity (Array.map get g.ins) in
        List.iter2
          (fun nid table -> set nid (Gates.lut_select_in ctx ~msize:(1 lsl arity) ~table ind))
          (List.rev g.nodes) (List.rev g.tables))
    ds;
  Array.length ds

let run_wave_luts net ~get ~set bc ~batch ~n lut_ids =
  if Array.length lut_ids = 0 then 0
  else run_lut_cells net ~get ~set bc ~batch ~n (build_lut_cells net lut_ids)

let partition_wave net par =
  if Netlist.has_luts net then
    ( Array.of_seq (Seq.filter (fun id -> not (Netlist.is_lut net id)) (Array.to_seq par)),
      Array.of_seq (Seq.filter (fun id -> Netlist.is_lut net id) (Array.to_seq par)) )
  else (par, [||])

(* The batched wave walk: every wave's bootstrapped gates run through the
   key-streaming kernel in chunks of at most [batch] gates (the final chunk
   of a wave may be short), NOTs inline after the wave's parallel phase.
   Per gate the combine → bootstrap → key-switch sequence is identical to
   the scalar walks, so outputs are ciphertext-bit-exact with them. *)
let run_batched obs cloud net values ~batch =
  let p = cloud.Gates.cloud_params in
  let n = p.Params.lwe.Params.n in
  let traced = Trace.enabled obs in
  let bc = Gates.batch_context cloud ~cap:batch in
  let sched = Levelize.run net in
  let waves = Levelize.waves sched net in
  let nwaves = Array.length waves in
  let wave_wall = Array.make nwaves 0.0 in
  let wave_width = Array.map (fun w -> Array.length w.Levelize.parallel) waves in
  for id = 0 to Netlist.node_count net - 1 do
    match Netlist.kind net id with
    | Netlist.Const b -> values.(id) <- Some (Gates.constant cloud b)
    | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> ()
  done;
  let tr = Trace.new_track obs ~name:"cpu" in
  if traced then Exec_obs.noise_gauges tr p;
  let bootstraps = ref 0 and nots = ref 0 in
  Array.iteri
    (fun w wave ->
      let t0 = Trace.now obs in
      let a0 = Exec_obs.alloc_words () in
      let c0 = Gates.batch_counters bc in
      let classic, luts = partition_wave net wave.Levelize.parallel in
      let width = Array.length wave.Levelize.parallel in
      let wb = ref 0 and wn = ref 0 in
      let pos = ref 0 in
      let cwidth = Array.length classic in
      while !pos < cwidth do
        let len = min batch (cwidth - !pos) in
        let base = !pos in
        let combined =
          Array.init len (fun i ->
              match Netlist.kind net classic.(base + i) with
              | Netlist.Gate (g, a, b) ->
                let va = classic_view net values a and vb = classic_view net values b in
                Gates.combine ~n (plan_of g) va vb
              | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> assert false)
        in
        let outs = Gates.bootstrap_batch bc combined in
        for i = 0 to len - 1 do
          values.(classic.(base + i)) <- Some outs.(i)
        done;
        wb := !wb + len;
        pos := !pos + len
      done;
      wb :=
        !wb
        + run_wave_luts net
            ~get:(fun id -> Option.get values.(id))
            ~set:(fun id v -> values.(id) <- Some v)
            bc ~batch ~n luts;
      Array.iter
        (fun id ->
          match Netlist.kind net id with
          | Netlist.Gate (g, a, _) when Gate.is_unary g ->
            incr wn;
            values.(id) <- Some (Lwe.neg (classic_view net values a))
          | _ -> assert false)
        wave.Levelize.inline;
      let t1 = Trace.now obs in
      wave_wall.(w) <- t1 -. t0;
      bootstraps := !bootstraps + !wb;
      nots := !nots + !wn;
      if traced then begin
        Trace.span tr ~cat:"wave" ~name:(Printf.sprintf "wave %d" w) ~t0 ~t1;
        Exec_obs.wave_counters tr p ~bootstraps:!wb ~nots:!wn ~width
          ~alloc_words:(Exec_obs.alloc_words () -. a0);
        let c1 = Gates.batch_counters bc in
        Exec_obs.batch_wave_counters tr p ~cap:batch
          ~launches:(c1.Gates.batch_launches - c0.Gates.batch_launches)
          ~gates:(c1.Gates.batch_gates - c0.Gates.batch_gates)
          ~bsk_rows:(c1.Gates.bsk_rows - c0.Gates.bsk_rows)
          ~ks_blocks:(c1.Gates.ks_blocks - c0.Gates.ks_blocks);
        Trace.drain obs
      end)
    waves;
  let c = Gates.batch_counters bc in
  (!bootstraps, !nots, wave_wall, wave_width, c)

(* The struct-of-arrays batched walk: the whole value table is one flat
   [Lwe_array] (node id = row), wave phases are combined straight into a
   staging array, and each sub-batch runs through the row-batched
   bootstrap + key-switch kernels — no per-gate record exists anywhere
   between the inputs and the collected outputs.  Per gate the
   combine → bootstrap → key-switch operation sequence is identical to the
   record paths, so outputs stay ciphertext-bit-exact. *)
let run_batched_soa obs cloud net inputs ~batch =
  let p = cloud.Gates.cloud_params in
  let n = p.Params.lwe.Params.n in
  let input_list = Netlist.inputs net in
  if Array.length inputs <> List.length input_list then
    invalid_arg "Tfhe_eval.run: input arity mismatch";
  let traced = Trace.enabled obs in
  let bc = Gates.batch_context cloud ~cap:batch in
  let sched = Levelize.run net in
  let waves = Levelize.waves sched net in
  let nwaves = Array.length waves in
  let wave_wall = Array.make nwaves 0.0 in
  let wave_width = Array.map (fun w -> Array.length w.Levelize.parallel) waves in
  let values = Lwe_array.create ~n (Netlist.node_count net) in
  List.iteri (fun i (_, id) -> Lwe_array.set values id inputs.(i)) input_list;
  for id = 0 to Netlist.node_count net - 1 do
    match Netlist.kind net id with
    | Netlist.Const b -> Lwe_array.set values id (Gates.constant cloud b)
    | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> ()
  done;
  (* lutdom rows read at classic use sites go through the record-level
     view; the linear maps are identical to the row kernels, so this
     stays bit-exact *)
  let soa_view id =
    let v = Lwe_array.get values id in
    if Netlist.is_lut net id then Gates.lut_to_classic v else v
  in
  let staging = Lwe_array.create ~n batch in
  let tr = Trace.new_track obs ~name:"cpu" in
  if traced then Exec_obs.noise_gauges tr p;
  let bootstraps = ref 0 and nots = ref 0 in
  Array.iteri
    (fun w wave ->
      let t0 = Trace.now obs in
      let a0 = Exec_obs.alloc_words () in
      let c0 = Gates.batch_counters bc in
      let classic, luts = partition_wave net wave.Levelize.parallel in
      let width = Array.length wave.Levelize.parallel in
      let wb = ref 0 and wn = ref 0 in
      let pos = ref 0 in
      let cwidth = Array.length classic in
      while !pos < cwidth do
        let len = min batch (cwidth - !pos) in
        let base = !pos in
        for i = 0 to len - 1 do
          match Netlist.kind net classic.(base + i) with
          | Netlist.Gate (g, a, b) ->
            if Netlist.is_lut net a || Netlist.is_lut net b then
              Lwe_array.set staging i (Gates.combine ~n (plan_of g) (soa_view a) (soa_view b))
            else
              Gates.combine_rows_into (plan_of g) ~a:values ~arow:a ~b:values ~brow:b
                ~dst:staging ~drow:i
          | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> assert false
        done;
        let outs = Gates.bootstrap_batch_rows bc (Lwe_array.slice staging ~pos:0 ~len) in
        for i = 0 to len - 1 do
          Lwe_array.blit ~src:outs ~src_pos:i ~dst:values ~dst_pos:classic.(base + i) ~len:1
        done;
        wb := !wb + len;
        pos := !pos + len
      done;
      wb :=
        !wb
        + run_wave_luts net
            ~get:(fun id -> Lwe_array.get values id)
            ~set:(fun id v -> Lwe_array.set values id v)
            bc ~batch ~n luts;
      Array.iter
        (fun id ->
          match Netlist.kind net id with
          | Netlist.Gate (g, a, _) when Gate.is_unary g ->
            incr wn;
            if Netlist.is_lut net a then Lwe_array.set values id (Lwe.neg (soa_view a))
            else Lwe_array.neg_into ~dst:values ~drow:id ~src:values ~srow:a
          | _ -> assert false)
        wave.Levelize.inline;
      let t1 = Trace.now obs in
      wave_wall.(w) <- t1 -. t0;
      bootstraps := !bootstraps + !wb;
      nots := !nots + !wn;
      if traced then begin
        Trace.span tr ~cat:"wave" ~name:(Printf.sprintf "wave %d" w) ~t0 ~t1;
        Exec_obs.wave_counters tr p ~bootstraps:!wb ~nots:!wn ~width
          ~alloc_words:(Exec_obs.alloc_words () -. a0);
        let c1 = Gates.batch_counters bc in
        Exec_obs.batch_wave_counters tr p ~cap:batch
          ~launches:(c1.Gates.batch_launches - c0.Gates.batch_launches)
          ~gates:(c1.Gates.batch_gates - c0.Gates.batch_gates)
          ~bsk_rows:(c1.Gates.bsk_rows - c0.Gates.bsk_rows)
          ~ks_blocks:(c1.Gates.ks_blocks - c0.Gates.ks_blocks);
        Trace.drain obs
      end)
    waves;
  let outputs =
    Netlist.outputs net |> List.map (fun (_, id) -> soa_view id) |> Array.of_list
  in
  let c = Gates.batch_counters bc in
  (outputs, !bootstraps, !nots, wave_wall, wave_width, c)

let run_legacy ?(obs = Trace.null) ?batch ?(soa = true) cloud net inputs =
  let start = Unix.gettimeofday () in
  match batch with
  | Some b ->
    if b < 1 then invalid_arg "Tfhe_eval.run: batch must be >= 1";
    let outputs, bootstraps, nots, wave_wall, wave_width, c =
      if soa then run_batched_soa obs cloud net inputs ~batch:b
      else begin
        let values = prepare net inputs ~who:"Tfhe_eval.run" in
        let bootstraps, nots, wave_wall, wave_width, c =
          run_batched obs cloud net values ~batch:b
        in
        (collect net values, bootstraps, nots, wave_wall, wave_width, c)
      end
    in
    let p = cloud.Gates.cloud_params in
    ( outputs,
      {
        bootstraps_executed = bootstraps;
        nots_executed = nots;
        wall_time = Unix.gettimeofday () -. start;
        wave_wall;
        wave_width;
        batch_size = b;
        batch_launches = c.Gates.batch_launches;
        bsk_bytes_streamed = c.Gates.bsk_rows * Exec_obs.bsk_row_bytes p;
        ks_bytes_streamed = c.Gates.ks_blocks * Exec_obs.ks_block_bytes p;
      } )
  | None ->
    let values = prepare net inputs ~who:"Tfhe_eval.run" in
    let bootstraps, nots, wave_wall, wave_width =
      if Trace.enabled obs then run_traced obs cloud net values
      else run_untraced cloud net values
    in
    ( collect net values,
      {
        bootstraps_executed = bootstraps;
        nots_executed = nots;
        wall_time = Unix.gettimeofday () -. start;
        wave_wall;
        wave_width;
        batch_size = 0;
        batch_launches = 0;
        bsk_bytes_streamed = 0;
        ks_bytes_streamed = 0;
      } )

let run ?(opts = Exec_opts.default) cloud net inputs =
  run_legacy ~obs:opts.Exec_opts.obs ?batch:opts.Exec_opts.batch
    ~soa:opts.Exec_opts.soa cloud net inputs
