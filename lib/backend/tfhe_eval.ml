module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
open Pytfhe_tfhe

type stats = { bootstraps_executed : int; nots_executed : int; wall_time : float }

let gate_of g =
  match g with
  | Gate.Nand -> Gates.nand_gate
  | Gate.And -> Gates.and_gate
  | Gate.Or -> Gates.or_gate
  | Gate.Nor -> Gates.nor_gate
  | Gate.Xnor -> Gates.xnor_gate
  | Gate.Xor -> Gates.xor_gate
  | Gate.Not -> fun ck a _ -> Gates.not_gate ck a
  | Gate.Andny -> Gates.andny_gate
  | Gate.Andyn -> Gates.andyn_gate
  | Gate.Orny -> Gates.orny_gate
  | Gate.Oryn -> Gates.oryn_gate

let apply_gate ctx g a b =
  match g with
  | Gate.Nand -> Gates.nand_gate_in ctx a b
  | Gate.And -> Gates.and_gate_in ctx a b
  | Gate.Or -> Gates.or_gate_in ctx a b
  | Gate.Nor -> Gates.nor_gate_in ctx a b
  | Gate.Xnor -> Gates.xnor_gate_in ctx a b
  | Gate.Xor -> Gates.xor_gate_in ctx a b
  | Gate.Not -> Lwe.neg a
  | Gate.Andny -> Gates.andny_gate_in ctx a b
  | Gate.Andyn -> Gates.andyn_gate_in ctx a b
  | Gate.Orny -> Gates.orny_gate_in ctx a b
  | Gate.Oryn -> Gates.oryn_gate_in ctx a b

let run cloud net inputs =
  let input_list = Netlist.inputs net in
  if Array.length inputs <> List.length input_list then
    invalid_arg "Tfhe_eval.run: input arity mismatch";
  let start = Unix.gettimeofday () in
  let ctx = Gates.default_context cloud in
  let n = Netlist.node_count net in
  let values : Lwe.sample option array = Array.make n None in
  List.iteri (fun i (_, id) -> values.(id) <- Some inputs.(i)) input_list;
  let bootstraps = ref 0 and nots = ref 0 in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Input _ -> ()
    | Netlist.Const b -> values.(id) <- Some (Gates.constant cloud b)
    | Netlist.Gate (g, a, b) ->
      let va = Option.get values.(a) and vb = Option.get values.(b) in
      if Gate.is_unary g then incr nots else incr bootstraps;
      values.(id) <- Some (apply_gate ctx g va vb)
  done;
  let outputs =
    Netlist.outputs net |> List.map (fun (_, id) -> Option.get values.(id)) |> Array.of_list
  in
  ( outputs,
    {
      bootstraps_executed = !bootstraps;
      nots_executed = !nots;
      wall_time = Unix.gettimeofday () -. start;
    } )
