(* Real multicore evaluation of TFHE netlists on OCaml 5 domains.

   The gate DAG is cut into waves by Levelize (the paper's Algorithm 1); a
   wave's bootstrapped gates have all their fan-ins in earlier waves, so
   they execute concurrently with static chunking across a fork-join domain
   pool.  Each domain owns a private Gates.context (TGSW workspace, FFT
   scratch, test-vector buffer); the only shared mutable state is the dense
   value table, and every wave writes a disjoint slice of it, with the
   pool's mutex handshake providing the inter-wave happens-before edge.

   The executor is bit-exact with Tfhe_eval.run: each gate performs the
   identical float/torus operation sequence, only on a different domain. *)

module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Levelize = Pytfhe_circuit.Levelize
module Trace = Pytfhe_obs.Trace
open Pytfhe_tfhe

type stats = {
  workers : int;
  bootstraps_executed : int;
  nots_executed : int;
  per_domain_bootstraps : int array;
  per_domain_busy : float array;
  wave_wall : float array;
  wave_width : int array;
  wall_time : float;
  achieved_speedup : float;
  ideal_speedup : float;
  batch_size : int;
  batch_launches : int;
  bsk_bytes_streamed : int;
  ks_bytes_streamed : int;
}

(* ------------------------------------------------------------------ *)
(* Fork-join domain pool                                               *)
(* ------------------------------------------------------------------ *)

type pool = {
  helpers : int;  (* worker domains beyond the calling one *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable remaining : int;
  mutable stop : bool;
  mutable failure : exn option;
  mutable domains : unit Domain.t array;
}

let pool_worker pool index =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.epoch = !seen do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.epoch;
      let job = Option.get pool.job in
      Mutex.unlock pool.mutex;
      let outcome = try job index; None with exn -> Some exn in
      Mutex.lock pool.mutex;
      (match outcome with
      | Some _ when pool.failure = None -> pool.failure <- outcome
      | Some _ | None -> ());
      pool.remaining <- pool.remaining - 1;
      if pool.remaining = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let pool_create helpers =
  let pool =
    {
      helpers;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      remaining = 0;
      stop = false;
      failure = None;
      domains = [||];
    }
  in
  pool.domains <- Array.init helpers (fun i -> Domain.spawn (fun () -> pool_worker pool (i + 1)));
  pool

(* Run [job d] for every worker index d in [0, helpers]; index 0 executes on
   the calling domain.  Returns once all indices finish; re-raises the first
   failure after the barrier so the pool stays consistent. *)
let pool_run pool job =
  if pool.helpers = 0 then job 0
  else begin
    Mutex.lock pool.mutex;
    pool.job <- Some job;
    pool.epoch <- pool.epoch + 1;
    pool.remaining <- pool.helpers;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    let mine = try job 0; None with exn -> Some exn in
    Mutex.lock pool.mutex;
    while pool.remaining > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    let helper_failure = pool.failure in
    pool.failure <- None;
    pool.job <- None;
    Mutex.unlock pool.mutex;
    match (mine, helper_failure) with
    | Some exn, _ | None, Some exn -> raise exn
    | None, None -> ()
  end

let pool_shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.domains

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

(* Wave-synchronous upper bound on speedup: with unit gate cost, [workers]
   domains need ceil(width / workers) rounds per wave. *)
let ideal_speedup (sched : Levelize.schedule) workers =
  let rounds =
    Array.fold_left
      (fun acc w -> if w > 0 then acc + ((w + workers - 1) / workers) else acc)
      0 sched.Levelize.widths
  in
  if rounds = 0 then 1.0 else float_of_int sched.Levelize.total_bootstraps /. float_of_int rounds

let run_legacy ?workers ?batch ?(soa = true) ?(obs = Trace.null) cloud net inputs =
  let workers =
    match workers with Some w -> w | None -> Domain.recommended_domain_count ()
  in
  if workers < 1 then invalid_arg "Par_eval.run: workers must be >= 1";
  (match batch with
  | Some b when b < 1 -> invalid_arg "Par_eval.run: batch must be >= 1"
  | Some _ | None -> ());
  let use_soa = soa && batch <> None in
  let input_list = Netlist.inputs net in
  if Array.length inputs <> List.length input_list then
    invalid_arg "Par_eval.run: input arity mismatch";
  (* Transform tables (FFT twiddles or NTT residue tables) are built once
     here, before any worker domain exists: the caches are atomic
     snapshot/CAS lists, so a helper domain racing a first build would
     duplicate work and churn the cache mid-wave. *)
  Params.precompute cloud.Gates.cloud_params;
  let start = Unix.gettimeofday () in
  let sched = Levelize.run net in
  let waves = Levelize.waves sched net in
  let n = Netlist.node_count net in
  let lwe_n = cloud.Gates.cloud_params.Params.lwe.Params.n in
  (* On the SoA batched path the whole value table is one flat struct of
     arrays (node id = row); the record table shrinks to nothing.  Helper
     domains write disjoint row ranges of the shared bigarrays, and the
     pool's mutex handshake provides the inter-wave happens-before edge
     exactly as it does for the record table. *)
  let values : Lwe.sample option array = Array.make (if use_soa then 0 else n) None in
  let svalues = Lwe_array.create ~n:lwe_n (if use_soa then n else 0) in
  List.iteri
    (fun i (_, id) ->
      if use_soa then Lwe_array.set svalues id inputs.(i) else values.(id) <- Some inputs.(i))
    input_list;
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Const b ->
      if use_soa then Lwe_array.set svalues id (Gates.constant cloud b)
      else values.(id) <- Some (Gates.constant cloud b)
    | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> ()
  done;
  (* Value accessors shared by the three chunk variants: [get_raw] returns
     the stored (possibly lutdom) ciphertext, [get_classic] applies the
     lutdom → classic view at classic use sites. *)
  let get_raw id = if use_soa then Lwe_array.get svalues id else Option.get values.(id) in
  let set_value id v =
    if use_soa then Lwe_array.set svalues id v else values.(id) <- Some v
  in
  let get_classic id =
    let v = get_raw id in
    if Netlist.is_lut net id then Gates.lut_to_classic v else v
  in
  (* One private context per domain: contexts.(0) belongs to the caller.
     Scalar contexts are only needed on the per-gate path, batch contexts
     only on the batched one. *)
  let contexts =
    match batch with
    | None -> Array.init workers (fun _ -> Gates.context cloud)
    | Some _ -> [||]
  in
  let batch_ctxs =
    match batch with
    | None -> [||]
    | Some b -> Array.init workers (fun _ -> Gates.batch_context cloud ~cap:b)
  in
  (* Only read at pool barriers, where the mutex handshake makes the helper
     domains' counter updates visible. *)
  let batch_totals () =
    Array.fold_left
      (fun (l, g, r, k) bc ->
        let c = Gates.batch_counters bc in
        ( l + c.Gates.batch_launches,
          g + c.Gates.batch_gates,
          r + c.Gates.bsk_rows,
          k + c.Gates.ks_blocks ))
      (0, 0, 0, 0) batch_ctxs
  in
  let per_domain_bootstraps = Array.make workers 0 in
  let per_domain_busy = Array.make workers 0.0 in
  let nwaves = Array.length waves in
  let wave_wall = Array.make nwaves 0.0 in
  let wave_width = Array.map (fun w -> Array.length w.Levelize.parallel) waves in
  let nots = ref 0 in
  (* Probe plumbing: on a disabled sink every track is the no-op dummy and
     [traced] gates the handful of extra clock reads per wave; the per-gate
     inner loop is untouched either way. *)
  let traced = Trace.enabled obs in
  let ep = Trace.epoch obs in
  let dom_tracks =
    Array.init workers (fun d ->
        Trace.new_track obs ~name:(Printf.sprintf "domain %d" d))
  in
  let wave_tr = Trace.new_track obs ~name:"waves" in
  if traced then Exec_obs.noise_gauges wave_tr cloud.Gates.cloud_params;
  let eval_chunk w gates d =
    (* Static chunking: domain d owns the contiguous slice [lo, hi). *)
    let width = Array.length gates in
    let lo = d * width / workers and hi = (d + 1) * width / workers in
    if lo < hi then begin
      let ctx = contexts.(d) in
      let t0 = Unix.gettimeofday () in
      for i = lo to hi - 1 do
        let id = gates.(i) in
        match Netlist.kind net id with
        | Netlist.Gate (g, a, b) ->
          let va = get_classic a and vb = get_classic b in
          values.(id) <- Some (Tfhe_eval.apply_gate ctx g va vb);
          per_domain_bootstraps.(d) <- per_domain_bootstraps.(d) + 1
        | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> assert false
      done;
      let t1 = Unix.gettimeofday () in
      per_domain_busy.(d) <- per_domain_busy.(d) +. (t1 -. t0);
      if traced then
        (* Safe without locks: each domain writes only its own track. *)
        Trace.span dom_tracks.(d) ~cat:"chunk"
          ~name:(Printf.sprintf "wave %d [%d,%d)" w lo hi)
          ~t0:(t0 -. ep) ~t1:(t1 -. ep)
    end
  in
  (* The batched variant: same static chunking, but domain d walks its
     slice in sub-batches of at most [b] gates through its private
     key-streaming batch context.  Per gate the combine → bootstrap →
     key-switch sequence is identical to the scalar chunk, so outputs stay
     bit-exact regardless of workers × batch. *)
  let eval_chunk_batched b w gates d =
    let width = Array.length gates in
    let lo = d * width / workers and hi = (d + 1) * width / workers in
    if lo < hi then begin
      let bc = batch_ctxs.(d) in
      let t0 = Unix.gettimeofday () in
      let pos = ref lo in
      while !pos < hi do
        let len = min b (hi - !pos) in
        let base = !pos in
        let combined =
          Array.init len (fun i ->
              match Netlist.kind net gates.(base + i) with
              | Netlist.Gate (g, a, b') ->
                let va = get_classic a and vb = get_classic b' in
                Gates.combine ~n:lwe_n (Tfhe_eval.plan_of g) va vb
              | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> assert false)
        in
        let outs = Gates.bootstrap_batch bc combined in
        for i = 0 to len - 1 do
          values.(gates.(base + i)) <- Some outs.(i)
        done;
        per_domain_bootstraps.(d) <- per_domain_bootstraps.(d) + len;
        pos := base + len
      done;
      let t1 = Unix.gettimeofday () in
      per_domain_busy.(d) <- per_domain_busy.(d) +. (t1 -. t0);
      if traced then
        Trace.span dom_tracks.(d) ~cat:"chunk"
          ~name:(Printf.sprintf "wave %d [%d,%d)" w lo hi)
          ~t0:(t0 -. ep) ~t1:(t1 -. ep)
    end
  in
  (* The SoA batched variant: one staging array covers the widest wave, and
     domain d combines its slice [lo, hi) of gates straight into staging
     rows [lo, hi) from the shared value table — no per-gate records.  Each
     sub-batch is an O(1) slice view of the staging rows, runs through the
     domain's private row-batched context, and the output rows are blitted
     back to the value table.  Row ranges are disjoint across domains, so
     the shared bigarrays need no locking beyond the wave barrier. *)
  let wave_staging =
    Lwe_array.create ~n:lwe_n
      (if use_soa then max 1 (Array.fold_left max 1 wave_width) else 0)
  in
  let eval_chunk_soa b w gates d =
    let width = Array.length gates in
    let lo = d * width / workers and hi = (d + 1) * width / workers in
    if lo < hi then begin
      let bc = batch_ctxs.(d) in
      let t0 = Unix.gettimeofday () in
      for i = lo to hi - 1 do
        match Netlist.kind net gates.(i) with
        | Netlist.Gate (g, a, b') ->
          if Netlist.is_lut net a || Netlist.is_lut net b' then
            (* Lutdom operand: materialize the classic views and combine
               through the record path into the staging row. *)
            Lwe_array.set wave_staging i
              (Gates.combine ~n:lwe_n (Tfhe_eval.plan_of g) (get_classic a) (get_classic b'))
          else
            Gates.combine_rows_into (Tfhe_eval.plan_of g) ~a:svalues ~arow:a ~b:svalues
              ~brow:b' ~dst:wave_staging ~drow:i
        | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> assert false
      done;
      let pos = ref lo in
      while !pos < hi do
        let len = min b (hi - !pos) in
        let base = !pos in
        let outs = Gates.bootstrap_batch_rows bc (Lwe_array.slice wave_staging ~pos:base ~len) in
        for i = 0 to len - 1 do
          Lwe_array.blit ~src:outs ~src_pos:i ~dst:svalues ~dst_pos:gates.(base + i) ~len:1
        done;
        per_domain_bootstraps.(d) <- per_domain_bootstraps.(d) + len;
        pos := base + len
      done;
      let t1 = Unix.gettimeofday () in
      per_domain_busy.(d) <- per_domain_busy.(d) +. (t1 -. t0);
      if traced then
        Trace.span dom_tracks.(d) ~cat:"chunk"
          ~name:(Printf.sprintf "wave %d [%d,%d)" w lo hi)
          ~t0:(t0 -. ep) ~t1:(t1 -. ep)
    end
  in
  let pool = pool_create (workers - 1) in
  Fun.protect
    ~finally:(fun () -> pool_shutdown pool)
    (fun () ->
      Array.iteri
        (fun w wave ->
          let t0 = Unix.gettimeofday () in
          let a0 = if traced then Exec_obs.alloc_words () else 0.0 in
          let c0 = if traced then batch_totals () else (0, 0, 0, 0) in
          let nots0 = !nots in
          let classic, luts = Tfhe_eval.partition_wave net wave.Levelize.parallel in
          if Array.length classic > 0 then
            pool_run pool
              (match batch with
              | None -> eval_chunk w classic
              | Some b when use_soa -> eval_chunk_soa b w classic
              | Some b -> eval_chunk_batched b w classic);
          (* LUT cells run after the wave's classic gates, chunked across the
             same domain pool by rotation unit: every cell is written by
             exactly one domain, and cells never split a rotation group, so
             memoized rotations stay deterministic and outputs bit-exact with
             the sequential executor for every worker count. *)
          if Array.length luts > 0 then begin
            let cells = Tfhe_eval.build_lut_cells net luts in
            let total = Array.length cells in
            pool_run pool (fun d ->
                let lo = d * total / workers and hi = (d + 1) * total / workers in
                if lo < hi then begin
                  let t0 = Unix.gettimeofday () in
                  let slice = Array.sub cells lo (hi - lo) in
                  let rots =
                    match batch with
                    | None ->
                      Tfhe_eval.run_lut_cells_scalar net ~get:get_raw ~set:set_value
                        contexts.(d) slice
                    | Some b ->
                      Tfhe_eval.run_lut_cells net ~get:get_raw ~set:set_value batch_ctxs.(d)
                        ~batch:b ~n:lwe_n slice
                  in
                  per_domain_bootstraps.(d) <- per_domain_bootstraps.(d) + rots;
                  let t1 = Unix.gettimeofday () in
                  per_domain_busy.(d) <- per_domain_busy.(d) +. (t1 -. t0);
                  if traced then
                    Trace.span dom_tracks.(d) ~cat:"chunk"
                      ~name:(Printf.sprintf "wave %d luts [%d,%d)" w lo hi)
                      ~t0:(t0 -. ep) ~t1:(t1 -. ep)
                end)
          end;
          (* Noiseless NOTs ride along on the coordinating domain: they may
             read this wave's fresh results, and cost one vector negation. *)
          Array.iter
            (fun id ->
              match Netlist.kind net id with
              | Netlist.Gate (g, a, _) when Gate.is_unary g ->
                if use_soa then begin
                  if Netlist.is_lut net a then
                    Lwe_array.set svalues id (Lwe.neg (get_classic a))
                  else Lwe_array.neg_into ~dst:svalues ~drow:id ~src:svalues ~srow:a
                end
                else values.(id) <- Some (Lwe.neg (get_classic a));
                incr nots
              | Netlist.Gate _ | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ ->
                assert false)
            wave.Levelize.inline;
          let t1 = Unix.gettimeofday () in
          wave_wall.(w) <- t1 -. t0;
          if traced then begin
            Trace.span wave_tr ~cat:"wave"
              ~name:(Printf.sprintf "wave %d" w)
              ~t0:(t0 -. ep) ~t1:(t1 -. ep);
            Exec_obs.wave_counters wave_tr cloud.Gates.cloud_params
              ~bootstraps:wave_width.(w) ~nots:(!nots - nots0)
              ~width:wave_width.(w)
              (* Coordinator-domain allocations only: [Gc.allocated_bytes]
                 is per-domain in OCaml 5. *)
              ~alloc_words:(Exec_obs.alloc_words () -. a0);
            (match batch with
            | Some b ->
              let l0, g0, r0, k0 = c0 in
              let l1, g1, r1, k1 = batch_totals () in
              Exec_obs.batch_wave_counters wave_tr cloud.Gates.cloud_params ~cap:b
                ~launches:(l1 - l0) ~gates:(g1 - g0) ~bsk_rows:(r1 - r0)
                ~ks_blocks:(k1 - k0)
            | None -> ());
            (* The pool barrier just passed: every helper domain is idle,
               so their single-writer buffers are safe to collect. *)
            Trace.drain obs
          end)
        waves);
  let outputs =
    Netlist.outputs net |> List.map (fun (_, id) -> get_classic id) |> Array.of_list
  in
  let wall_time = Unix.gettimeofday () -. start in
  let busy = Array.fold_left ( +. ) 0.0 per_domain_busy in
  let launches, _, rows, blocks = batch_totals () in
  let p = cloud.Gates.cloud_params in
  ( outputs,
    {
      workers;
      bootstraps_executed = Array.fold_left ( + ) 0 per_domain_bootstraps;
      nots_executed = !nots;
      per_domain_bootstraps;
      per_domain_busy;
      wave_wall;
      wave_width;
      wall_time;
      achieved_speedup = (if wall_time > 0.0 then busy /. wall_time else 0.0);
      ideal_speedup = ideal_speedup sched workers;
      batch_size = (match batch with Some b -> b | None -> 0);
      batch_launches = launches;
      bsk_bytes_streamed = rows * Exec_obs.bsk_row_bytes p;
      ks_bytes_streamed = blocks * Exec_obs.ks_block_bytes p;
    } )

let run ?workers ?(opts = Exec_opts.default) cloud net inputs =
  run_legacy ?workers ?batch:opts.Exec_opts.batch ~soa:opts.Exec_opts.soa
    ~obs:opts.Exec_opts.obs cloud net inputs

(* --- Streaming execution --------------------------------------------------

   Multicore execution of a streamed binary through the segmented wave
   driver: each wave's resolved-operand tasks are fanned out over the
   domain pool — classic gates statically chunked (scalar or through
   per-domain batch contexts), LUT rotation units distributed whole so each
   group's indicator rotation happens exactly once.  The per-gate operation
   sequence matches [run], so outputs are ciphertext-bit-exact with it (and
   with [Tfhe_eval]) for any worker count and any window. *)

let run_stream ?workers ?(opts = Exec_opts.default) ?window cloud read inputs =
  let workers =
    match workers with Some w -> w | None -> Domain.recommended_domain_count ()
  in
  if workers < 1 then invalid_arg "Par_eval.run_stream: workers must be >= 1";
  let batch = opts.Exec_opts.batch in
  (match batch with
  | Some b when b < 1 -> invalid_arg "Par_eval.run_stream: batch must be >= 1"
  | Some _ | None -> ());
  (* Transform tables must exist before any helper domain does — see
     [run_legacy]. *)
  Params.precompute cloud.Gates.cloud_params;
  let start = Unix.gettimeofday () in
  let obs = opts.Exec_opts.obs in
  let p = cloud.Gates.cloud_params in
  let lwe_n = p.Params.lwe.Params.n in
  let contexts = Array.init workers (fun _ -> Gates.context cloud) in
  let batch_ctxs =
    match batch with
    | None -> [||]
    | Some b -> Array.init workers (fun _ -> Gates.batch_context cloud ~cap:b)
  in
  let batch_totals () =
    Array.fold_left
      (fun (l, r, k) bc ->
        let c = Gates.batch_counters bc in
        (l + c.Gates.batch_launches, r + c.Gates.bsk_rows, k + c.Gates.ks_blocks))
      (0, 0, 0) batch_ctxs
  in
  let per_domain_bootstraps = Array.make workers 0 in
  let per_domain_busy = Array.make workers 0.0 in
  let pool = pool_create (workers - 1) in
  let run_wave tasks =
    let total = Array.length tasks in
    let out = Array.make total None in
    let gate_idx = ref [] and lut_idx = ref [] in
    Array.iteri
      (fun i t ->
        match t with
        | Stream_exec.T_gate _ -> gate_idx := i :: !gate_idx
        | Stream_exec.T_lut _ -> lut_idx := i :: !lut_idx)
      tasks;
    let gates = Array.of_list (List.rev !gate_idx) in
    let cwidth = Array.length gates in
    if cwidth > 0 then
      pool_run pool (fun d ->
          let lo = d * cwidth / workers and hi = (d + 1) * cwidth / workers in
          if lo < hi then begin
            let t0 = Unix.gettimeofday () in
            (match batch with
            | None ->
              let ctx = contexts.(d) in
              for i = lo to hi - 1 do
                match tasks.(gates.(i)) with
                | Stream_exec.T_gate { gate; a; b } ->
                  out.(gates.(i)) <- Some (Tfhe_eval.apply_gate ctx gate a b)
                | Stream_exec.T_lut _ -> assert false
              done
            | Some b ->
              let bc = batch_ctxs.(d) in
              let pos = ref lo in
              while !pos < hi do
                let len = min b (hi - !pos) in
                let base = !pos in
                let combined =
                  Array.init len (fun i ->
                      match tasks.(gates.(base + i)) with
                      | Stream_exec.T_gate { gate; a; b } ->
                        Gates.combine ~n:lwe_n (Tfhe_eval.plan_of gate) a b
                      | Stream_exec.T_lut _ -> assert false)
                in
                let outs = Gates.bootstrap_batch bc combined in
                for i = 0 to len - 1 do
                  out.(gates.(base + i)) <- Some outs.(i)
                done;
                pos := !pos + len
              done);
            per_domain_bootstraps.(d) <- per_domain_bootstraps.(d) + (hi - lo);
            per_domain_busy.(d) <- per_domain_busy.(d) +. (Unix.gettimeofday () -. t0)
          end);
    let cells = Stream_exec.stream_lut_cells tasks (List.rev !lut_idx) in
    let ncells = Array.length cells in
    if ncells > 0 then
      pool_run pool (fun d ->
          let lo = d * ncells / workers and hi = (d + 1) * ncells / workers in
          if lo < hi then begin
            let t0 = Unix.gettimeofday () in
            let ctx = contexts.(d) in
            for c = lo to hi - 1 do
              match cells.(c) with
              | Stream_exec.C_sign { idx; table; operand } ->
                out.(idx) <- Some (Gates.lut1_in ctx ~table operand)
              | Stream_exec.C_group g ->
                let ind = Gates.lut_indicators_in ctx ~arity:g.arity g.raws in
                List.iter2
                  (fun idx table ->
                    out.(idx) <-
                      Some (Gates.lut_select_in ctx ~msize:(1 lsl g.arity) ~table ind))
                  (List.rev g.idxs) (List.rev g.tables)
            done;
            per_domain_bootstraps.(d) <- per_domain_bootstraps.(d) + (hi - lo);
            per_domain_busy.(d) <- per_domain_busy.(d) +. (Unix.gettimeofday () -. t0)
          end);
    Array.map (function Some v -> v | None -> assert false) out
  in
  let ctx_caller = contexts.(0) in
  let ops =
    {
      Stream_exec.v_gate = (fun g a b -> Tfhe_eval.apply_gate ctx_caller g a b);
      v_input =
        (fun i ->
          if i >= Array.length inputs then
            invalid_arg "Par_eval.run_stream: wrong number of inputs for the stream"
          else inputs.(i));
      v_lut =
        (fun ~arity ~table ops -> Gates.lut_cell_in ctx_caller ~arity ~table ops);
      v_lut_view = Gates.lut_to_classic;
    }
  in
  let outputs, ws =
    Fun.protect
      ~finally:(fun () -> pool_shutdown pool)
      (fun () -> Stream_exec.run_waves ~obs ?window ~run_wave ops read)
  in
  let wall_time = Unix.gettimeofday () -. start in
  let busy = Array.fold_left ( +. ) 0.0 per_domain_busy in
  let launches, rows, blocks = batch_totals () in
  let rounds =
    Array.fold_left
      (fun acc w -> if w > 0 then acc + ((w + workers - 1) / workers) else acc)
      0 ws.Stream_exec.wave_widths
  in
  ( outputs,
    {
      workers;
      bootstraps_executed = ws.Stream_exec.bootstraps_run;
      nots_executed = ws.Stream_exec.nots_run;
      per_domain_bootstraps;
      per_domain_busy;
      wave_wall = ws.Stream_exec.wave_wall;
      wave_width = ws.Stream_exec.wave_widths;
      wall_time;
      achieved_speedup = (if wall_time > 0.0 then busy /. wall_time else 0.0);
      ideal_speedup =
        (if rounds = 0 then 1.0
         else float_of_int ws.Stream_exec.bootstraps_run /. float_of_int rounds);
      batch_size = (match batch with Some b -> b | None -> 0);
      batch_launches = launches;
      bsk_bytes_streamed = rows * Exec_obs.bsk_row_bytes p;
      ks_bytes_streamed = blocks * Exec_obs.ks_block_bytes p;
    } )

let pp_stats fmt s =
  Format.fprintf fmt
    "workers=%d bootstraps=%d nots=%d wall=%.3fs speedup=%.2fx (wave-sync ideal %.2fx)@ per-domain bootstraps: %a"
    s.workers s.bootstraps_executed s.nots_executed s.wall_time s.achieved_speedup
    s.ideal_speedup
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") Format.pp_print_int)
    (Array.to_list s.per_domain_bootstraps)
