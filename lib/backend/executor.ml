type opts = Exec_opts.t = {
  obs : Pytfhe_obs.Trace.sink;
  batch : int option;
  soa : bool;
}

let default_opts = Exec_opts.default

type detail =
  | Cpu_stats of Tfhe_eval.stats
  | Multicore_stats of Par_eval.stats
  | Multiprocess_stats of Dist_eval.stats

type stats = {
  backend : string;
  workers : int;
  bootstraps_executed : int;
  nots_executed : int;
  wall_time : float;
  wave_wall : float array;
  wave_width : int array;
  detail : detail;
}

module type S = sig
  val name : string

  val run :
    ?opts:opts ->
    Pytfhe_tfhe.Gates.cloud_keyset ->
    Pytfhe_circuit.Netlist.t ->
    Pytfhe_tfhe.Lwe.sample array ->
    Pytfhe_tfhe.Lwe.sample array * stats

  val run_stream :
    ?opts:opts ->
    ?window:int ->
    Pytfhe_tfhe.Gates.cloud_keyset ->
    (unit -> bytes option) ->
    Pytfhe_tfhe.Lwe.sample array ->
    Pytfhe_tfhe.Lwe.sample array * stats
end

let cpu : (module S) =
  (module struct
    let name = "cpu"

    let run ?opts cloud net inputs =
      let outputs, s = Tfhe_eval.run ?opts cloud net inputs in
      ( outputs,
        {
          backend = name;
          workers = 1;
          bootstraps_executed = s.Tfhe_eval.bootstraps_executed;
          nots_executed = s.Tfhe_eval.nots_executed;
          wall_time = s.Tfhe_eval.wall_time;
          wave_wall = s.Tfhe_eval.wave_wall;
          wave_width = s.Tfhe_eval.wave_width;
          detail = Cpu_stats s;
        } )

    let run_stream ?opts ?window cloud read inputs =
      let outputs, s = Stream_exec.run_encrypted_stream ?opts ?window cloud read inputs in
      ( outputs,
        {
          backend = name;
          workers = 1;
          bootstraps_executed = s.Tfhe_eval.bootstraps_executed;
          nots_executed = s.Tfhe_eval.nots_executed;
          wall_time = s.Tfhe_eval.wall_time;
          wave_wall = s.Tfhe_eval.wave_wall;
          wave_width = s.Tfhe_eval.wave_width;
          detail = Cpu_stats s;
        } )
  end)

let multicore ?workers () : (module S) =
  (module struct
    let name = "par"

    let run ?opts cloud net inputs =
      let outputs, s = Par_eval.run ?workers ?opts cloud net inputs in
      ( outputs,
        {
          backend = name;
          workers = s.Par_eval.workers;
          bootstraps_executed = s.Par_eval.bootstraps_executed;
          nots_executed = s.Par_eval.nots_executed;
          wall_time = s.Par_eval.wall_time;
          wave_wall = s.Par_eval.wave_wall;
          wave_width = s.Par_eval.wave_width;
          detail = Multicore_stats s;
        } )

    let run_stream ?opts ?window cloud read inputs =
      let outputs, s = Par_eval.run_stream ?workers ?opts ?window cloud read inputs in
      ( outputs,
        {
          backend = name;
          workers = s.Par_eval.workers;
          bootstraps_executed = s.Par_eval.bootstraps_executed;
          nots_executed = s.Par_eval.nots_executed;
          wall_time = s.Par_eval.wall_time;
          wave_wall = s.Par_eval.wave_wall;
          wave_width = s.Par_eval.wave_width;
          detail = Multicore_stats s;
        } )
  end)

let multiprocess ?workers ?config () : (module S) =
  let cfg =
    match config with
    | Some c -> c
    | None -> Dist_eval.config (match workers with Some w -> w | None -> 2)
  in
  (module struct
    let name = "dist"

    (* The multiprocess executor ships gates over the wire one shard at a
       time; key streaming happens worker-side, so a requested
       [opts.batch]/non-default [opts.soa] raises Invalid_argument in
       [Dist_eval.run] instead of being silently dropped (the wire side
       of the layout is [config.array_frames]). *)
    let run ?opts cloud net inputs =
      let outputs, s = Dist_eval.run ?opts cfg cloud net inputs in
      ( outputs,
        {
          backend = name;
          workers = s.Dist_eval.workers_started;
          bootstraps_executed = s.Dist_eval.bootstraps_executed;
          nots_executed = s.Dist_eval.nots_executed;
          wall_time = s.Dist_eval.wall_time;
          wave_wall = s.Dist_eval.wave_wall;
          wave_width = s.Dist_eval.wave_width;
          detail = Multiprocess_stats s;
        } )

    let run_stream ?opts ?window cloud read inputs =
      let outputs, s = Dist_eval.run_stream ?opts ?window cfg cloud read inputs in
      ( outputs,
        {
          backend = name;
          workers = s.Dist_eval.workers_started;
          bootstraps_executed = s.Dist_eval.bootstraps_executed;
          nots_executed = s.Dist_eval.nots_executed;
          wall_time = s.Dist_eval.wall_time;
          wave_wall = s.Dist_eval.wave_wall;
          wave_width = s.Dist_eval.wave_width;
          detail = Multiprocess_stats s;
        } )
  end)

let pp_stats fmt s =
  Format.fprintf fmt "[%s] workers=%d bootstraps=%d nots=%d wall=%.3fs"
    s.backend s.workers s.bootstraps_executed s.nots_executed s.wall_time;
  match s.detail with
  | Cpu_stats _ -> ()
  | Multicore_stats p -> Format.fprintf fmt "@ %a" Par_eval.pp_stats p
  | Multiprocess_stats d -> Format.fprintf fmt "@ %a" Dist_eval.pp_stats d
