(** Real multi-process distributed TFHE execution.

    The paper's distributed CPU backend (§IV-D) runs TFHE gates on a Ray
    cluster; {!Sched_cpu} only prices that design, and {!Par_eval} runs it
    on shared-memory domains.  This executor crosses the process boundary
    for real: it spawns [workers] OS processes, ships the cloud keyset to
    each once at startup, and drives the levelized wave schedule by sending
    per-wave gate shards — gate opcodes plus input ciphertexts, serialized
    through {!Pytfhe_util.Wire} inside length-prefixed frames over
    [Unix.socketpair] channels — and collecting result ciphertexts at a
    wave barrier.

    Outputs are bit-exact with {!Tfhe_eval.run} for any worker count: every
    gate performs the identical torus operation sequence, and the 32-bit
    ciphertext wire encoding round-trips exactly.

    {b Failure semantics.}  The coordinator never trusts a worker:

    - each request carries a deadline; a slow worker gets [max_retries]
      backoff extensions before it is declared lost;
    - crashed workers are detected early by a [waitpid(WNOHANG)] heartbeat
      and by EOF on their socket, not just by timeout;
    - a reply that fails to parse ({!Pytfhe_util.Wire.Corrupt}, truncated
      frame, wrong arity) is dropped and the shard re-requested — a
      tampered frame can cost a retry, never correctness;
    - a lost worker's shard is reassigned to the least-loaded survivor, so
      execution degrades gracefully down to one worker.  Only the loss of
      every worker raises [Failure].

    Workers are spawned by re-executing the host binary with the
    [PYTFHE_DIST_WORKER] environment variable set (posix_spawn under the
    hood, via [Unix.create_process]), because the OCaml 5 runtime forbids
    [Unix.fork] in any process that has ever created a domain — and
    {!Par_eval} creates domains.  {b Every executable that calls {!run}
    must call {!worker_entry} as the first thing in main}; the startup
    handshake fails fast, with a message naming the missing hook, if it
    does not.

    The protocol is documented in [docs/backends.md]. *)

val worker_entry : unit -> unit
(** In a process spawned by {!run} (recognized by the [PYTFHE_DIST_WORKER]
    environment variable), serves the gate protocol on the stdin socket
    and [_exit]s when the coordinator hangs up — it never returns.  In any
    other process it is a no-op.  Call it first in main of every
    executable that uses {!run}. *)

(** {2 Fault injection}

    Faults are shipped to workers in the hello frame and executed by the
    worker itself, so the failure is genuine (a real [SIGKILL], a real
    truncated TCP-style frame) rather than simulated in the coordinator.
    Used by the fault-injection tests and the [dist] bench experiment. *)

type fault_action =
  | Crash  (** [SIGKILL] self while holding the request (mid-wave death). *)
  | Stall of float  (** Sleep this many seconds before evaluating. *)
  | Flip_reply
      (** Send a framing-correct reply whose payload magic is bit-flipped —
          exercises the corrupt-frame retry path. *)
  | Truncate_reply
      (** Announce a full frame, send half of it, and exit — exercises the
          EOF-mid-frame path. *)

type fault = {
  victim : int;  (** Worker index the fault applies to. *)
  after_requests : int;  (** Fires while serving this (1-based) request. *)
  action : fault_action;
}

type config = {
  workers : int;
  request_timeout : float;  (** Seconds before a request is suspect. *)
  max_retries : int;  (** Backoff extensions / re-sends per shard. *)
  backoff : float;  (** Deadline multiplier per retry ([>= 1]). *)
  heartbeat_interval : float;  (** Liveness-poll period while waiting. *)
  faults : fault list;  (** Fault-injection schedule (tests only). *)
  array_frames : bool;
      (** Ship shards as struct-of-arrays [DRQ2]/[DRP2] frames (gate codes
          plus two flat {!Pytfhe_tfhe.Lwe_array} operand waves, one
          bounds-checked blit per direction) and evaluate them through the
          worker's row-batched kernels.  [false] keeps the per-sample
          [DREQ]/[DREP] framing.  Both are ciphertext-bit-exact. *)
}

val config :
  ?request_timeout:float ->
  ?max_retries:int ->
  ?backoff:float ->
  ?heartbeat_interval:float ->
  ?faults:fault list ->
  ?array_frames:bool ->
  int ->
  config
(** [config workers] with defaults: 60 s timeout, 2 retries, 2x backoff,
    0.25 s heartbeat, no faults, array frames on.  Raises
    [Invalid_argument] on nonsense ([workers < 1], non-positive timeout,
    [backoff < 1]). *)

type stats = {
  workers_started : int;
  workers_lost : int;  (** Workers that crashed or were declared lost. *)
  bootstraps_executed : int;
  nots_executed : int;
  requests_sent : int;  (** Shard requests, including re-sends. *)
  retries : int;  (** Deadline extensions plus corrupt-frame re-sends. *)
  reassignments : int;  (** Shards moved to a surviving worker. *)
  corrupt_frames : int;  (** Replies rejected by the parser. *)
  heartbeat_misses : int;
      (** Times the [waitpid(WNOHANG)] heartbeat found a worker dead before
          its request deadline expired. *)
  keyset_bytes : int;  (** Serialized cloud keyset size (shipped once per worker). *)
  bytes_to_workers : int;
  bytes_from_workers : int;
  startup_time : float;  (** Fork + keyset shipping seconds. *)
  dispatch_time : float;
      (** Coordinator seconds spent serializing and writing shard requests
          — the measured analogue of {!Sched_cpu}'s [dispatch_time]. *)
  transfer_time : float;
      (** Round-trip seconds not accounted to worker compute: wire
          transfer, frame parsing, barrier waits. *)
  compute_time : float;  (** Sum of worker-reported gate-evaluation seconds. *)
  wave_wall : float array;  (** Wall seconds per wave. *)
  wave_width : int array;  (** Bootstrapped gates per wave. *)
  wall_time : float;
}

val run :
  ?opts:Exec_opts.t ->
  config ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pytfhe_circuit.Netlist.t ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** [run cfg cloud net inputs] forks [cfg.workers] processes and evaluates
    the program wave by wave across them, returning outputs in declaration
    order.  Raises [Invalid_argument] on input arity mismatch and [Failure]
    if every worker is lost.

    With an enabled [obs] sink, the hello frame carries the sink's epoch
    and each worker collects per-shard spans and crypto counters in a
    local sink, shipping them back in an optional [DTRC] frame sent just
    before each reply; the coordinator merges them onto per-worker tracks
    and adds wave spans, wire-byte / retry / reassignment /
    heartbeat-miss counters and the noise gauges on a ["coordinator"]
    track.  A worker lost mid-wave truncates the trace (its unshipped
    spans die with it) but never corrupts it — a malformed [DTRC] frame
    is counted in [corrupt_frames] and dropped.

    Batching is worker-side here ([config.array_frames] selects the wire
    layout), so a caller passing [opts.batch] or a non-default [opts.soa]
    raises [Invalid_argument] — the knobs used to be documented-ignored,
    which silently dropped a requested optimization. *)

val run_stream :
  ?opts:Exec_opts.t ->
  ?window:int ->
  config ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  (unit -> bytes option) ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** Distributed execution of a streamed binary through
    {!Stream_exec.run_waves}: the coordinator never materialises a
    netlist — each wave's resolved-operand tasks convert directly into
    shard requests (the wire format is unchanged, so workers are
    oblivious), with the same fault tolerance as {!run}.  Outputs are
    ciphertext-bit-exact with {!run} for any worker count and any
    [window].  [stats.wave_width] / [stats.wave_wall] cover executed
    waves in order rather than netlist levels.  Same [Invalid_argument]
    contract as {!run} for the batch/soa knobs. *)

val run_legacy :
  ?obs:Pytfhe_obs.Trace.sink ->
  config ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pytfhe_circuit.Netlist.t ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** @deprecated The pre-{!Exec_opts} signature, kept for one release. *)

val pp_stats : Format.formatter -> stats -> unit

(** {2 Handshake internals}

    The DHEL hello-frame builder and parser, exposed so the test suite can
    pin the transform-negotiation contract without spawning processes. *)

val hello_bytes :
  index:int ->
  transform:Pytfhe_fft.Transform.kind ->
  obs:Pytfhe_obs.Trace.sink ->
  faults:fault list ->
  keyset_blob:string ->
  Bytes.t
(** The coordinator's DHEL frame payload: magic, worker index, the
    coordinator's transform tag, tracing plumbing, fault schedule and the
    serialized cloud keyset. *)

val parse_hello :
  Pytfhe_util.Wire.reader ->
  int * bool * float * fault list * Pytfhe_tfhe.Gates.cloud_keyset
(** Worker-side parse of a DHEL payload:
    [(index, obs_on, obs_epoch, faults, keyset)].  Raises
    [{!Pytfhe_util.Wire}.Corrupt] on an unknown transform code or when the
    coordinator's transform tag disagrees with the transform recorded in
    the keyset's own parameters — a coordinator/worker mismatch must fail
    the handshake, not silently mis-evaluate. *)
