(** The reference encrypted backend: evaluate a TFHE program gate by gate on
    real LWE ciphertexts with the cloud keyset.

    This is the single-core executor every other backend's numbers are
    normalised to; the test suite runs whole compiled circuits through it
    and checks the decrypted outputs against {!Plain_eval}. *)

type stats = {
  bootstraps_executed : int;
  nots_executed : int;
  wall_time : float;  (** Seconds of real local compute. *)
  wave_wall : float array;
      (** Wall seconds per wave — only filled on traced or batched runs
          (which execute wave by wave); empty on the untraced id-order
          walk. *)
  wave_width : int array;  (** Bootstrapped gates per wave (traced/batched runs). *)
  batch_size : int;  (** The [?batch] capacity used; 0 on the scalar path. *)
  batch_launches : int;  (** Batched bootstrap kernel launches (0 scalar). *)
  bsk_bytes_streamed : int;
      (** Bytes of bootstrapping key streamed from memory by the batched
          kernel ([Bootstrap] row counter × {!Exec_obs.bsk_row_bytes});
          0 on the scalar path. *)
  ks_bytes_streamed : int;
      (** Bytes of key-switch table streamed by the batched kernel; 0 on
          the scalar path. *)
}

val run :
  ?opts:Exec_opts.t ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pytfhe_circuit.Netlist.t ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** [run cloud net inputs] homomorphically evaluates every gate in
    topological order.  [inputs] follow the netlist's input declaration
    order; outputs follow the output declaration order.  Execution knobs
    ride in [?opts] (default {!Exec_opts.default}); below, [obs] / [batch]
    / [soa] name its fields.

    With an enabled [obs] sink the walk switches from id order to the
    levelized wave order — a different topological order of the same DAG,
    so outputs are bit-exact either way — and emits one span plus the
    standard counter set per wave on a ["cpu"] track.

    With [?batch:b] (b ≥ 1) each wave's bootstrapped gates run through the
    key-streaming batch kernel in chunks of at most [b] gates: the
    bootstrapping key and key-switch table are streamed from memory once
    per chunk instead of once per gate.  By default ([?soa:true]) the
    batched walk keeps the whole value table in one struct-of-arrays
    {!Pytfhe_tfhe.Lwe_array} (node id = row) and runs the row-batched
    kernels — no per-gate ciphertext record is materialized between the
    inputs and the collected outputs.  [?soa:false] selects the older
    record-per-gate batched walk (kept for benchmark attribution of the
    layout change).  Outputs are ciphertext-bit-exact across scalar,
    record-batched and SoA-batched paths for every batch size; a traced
    batched run additionally emits [batch_waves]/[batch_fill]/
    [bsk_bytes_streamed]/[ks_bytes_streamed] counters per wave. *)

val run_legacy :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?batch:int ->
  ?soa:bool ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pytfhe_circuit.Netlist.t ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** @deprecated The pre-{!Exec_opts} flag triple, kept for one release;
    [run_legacy ?obs ?batch ?soa] ≡ [run ~opts:(Exec_opts.of_flags ...)]. *)

val plan_of : Pytfhe_circuit.Gate.t -> Pytfhe_tfhe.Gates.combine_plan
(** The linear phase combination of a bootstrapped IR gate (shared with
    [Par_eval]'s batched path).  Raises [Invalid_argument] on [Not], which
    is evaluated noiselessly. *)

val gate_of : Pytfhe_circuit.Gate.t ->
  Pytfhe_tfhe.Gates.cloud_keyset -> Pytfhe_tfhe.Lwe.sample -> Pytfhe_tfhe.Lwe.sample ->
  Pytfhe_tfhe.Lwe.sample
(** The bootstrapped-gate implementation behind each IR gate type. *)

val apply_gate :
  Pytfhe_tfhe.Gates.context -> Pytfhe_circuit.Gate.t ->
  Pytfhe_tfhe.Lwe.sample -> Pytfhe_tfhe.Lwe.sample -> Pytfhe_tfhe.Lwe.sample
(** Same dispatch through an explicit per-thread evaluation context — the
    primitive {!Par_eval} runs on every worker domain.  [Not] ignores its
    second operand. *)

(** {2 LUT-cell execution plumbing (shared with [Par_eval])}

    LUT cells produce lutdom-encoded ciphertexts; classic consumers read
    them through the free lutdom → classic view.  Multi-input cells over
    the same operand tuple share one blind rotation: {!build_lut_cells}
    groups a wave's cells deterministically (first-appearance order), and
    the runners execute built cells — scalar or through the mixed-job
    batch kernel, bit-exact with each other. *)

type lut_cell_build

val lut_key : int array -> int * int * int * int
(** The rotation-sharing key of a LUT cell's operand tuple — (arity, op0,
    op1 or -1, op2 or -1).  Cells agreeing on this key may share one blind
    rotation. *)

val classic_view :
  Pytfhe_circuit.Netlist.t -> Pytfhe_tfhe.Lwe.sample option array ->
  Pytfhe_circuit.Netlist.id -> Pytfhe_tfhe.Lwe.sample
(** The node's value as a classic ciphertext (applies the lutdom view to
    [Lut] nodes). *)

val partition_wave :
  Pytfhe_circuit.Netlist.t -> Pytfhe_circuit.Netlist.id array ->
  Pytfhe_circuit.Netlist.id array * Pytfhe_circuit.Netlist.id array
(** Split a wave's bootstrapped nodes into (classic gates, LUT cells),
    both preserving order.  O(1) pass-through when the netlist has no
    LUT cells. *)

val build_lut_cells :
  Pytfhe_circuit.Netlist.t -> Pytfhe_circuit.Netlist.id array -> lut_cell_build array
(** Group a wave's LUT-cell node ids into rotation units: one unit per
    arity-1 cell, one per distinct multi-input operand tuple. *)

val run_lut_cells :
  Pytfhe_circuit.Netlist.t ->
  get:(Pytfhe_circuit.Netlist.id -> Pytfhe_tfhe.Lwe.sample) ->
  set:(Pytfhe_circuit.Netlist.id -> Pytfhe_tfhe.Lwe.sample -> unit) ->
  Pytfhe_tfhe.Gates.batch_context -> batch:int -> n:int -> lut_cell_build array -> int
(** Execute built cells through the mixed-job batch kernel in launches of
    at most [batch] cells; [n] is the LWE dimension.  Returns the number
    of blind rotations performed (= number of cells). *)

val run_lut_cells_scalar :
  Pytfhe_circuit.Netlist.t ->
  get:(Pytfhe_circuit.Netlist.id -> Pytfhe_tfhe.Lwe.sample) ->
  set:(Pytfhe_circuit.Netlist.id -> Pytfhe_tfhe.Lwe.sample -> unit) ->
  Pytfhe_tfhe.Gates.context -> lut_cell_build array -> int
(** Scalar execution of built cells; bit-exact with {!run_lut_cells}. *)
