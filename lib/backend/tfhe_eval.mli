(** The reference encrypted backend: evaluate a TFHE program gate by gate on
    real LWE ciphertexts with the cloud keyset.

    This is the single-core executor every other backend's numbers are
    normalised to; the test suite runs whole compiled circuits through it
    and checks the decrypted outputs against {!Plain_eval}. *)

type stats = {
  bootstraps_executed : int;
  nots_executed : int;
  wall_time : float;  (** Seconds of real local compute. *)
  wave_wall : float array;
      (** Wall seconds per wave — only filled on traced runs (which
          execute wave by wave); empty on the untraced id-order walk. *)
  wave_width : int array;  (** Bootstrapped gates per wave (traced runs). *)
}

val run :
  ?obs:Pytfhe_obs.Trace.sink ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pytfhe_circuit.Netlist.t ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** [run cloud net inputs] homomorphically evaluates every gate in
    topological order.  [inputs] follow the netlist's input declaration
    order; outputs follow the output declaration order.

    With an enabled [obs] sink the walk switches from id order to the
    levelized wave order — a different topological order of the same DAG,
    so outputs are bit-exact either way — and emits one span plus the
    standard counter set per wave on a ["cpu"] track. *)

val gate_of : Pytfhe_circuit.Gate.t ->
  Pytfhe_tfhe.Gates.cloud_keyset -> Pytfhe_tfhe.Lwe.sample -> Pytfhe_tfhe.Lwe.sample ->
  Pytfhe_tfhe.Lwe.sample
(** The bootstrapped-gate implementation behind each IR gate type. *)

val apply_gate :
  Pytfhe_tfhe.Gates.context -> Pytfhe_circuit.Gate.t ->
  Pytfhe_tfhe.Lwe.sample -> Pytfhe_tfhe.Lwe.sample -> Pytfhe_tfhe.Lwe.sample
(** Same dispatch through an explicit per-thread evaluation context — the
    primitive {!Par_eval} runs on every worker domain.  [Not] ignores its
    second operand. *)
