(* Length-prefixed PTFD framing, shared by every socket protocol in the
   tree: the multiprocess executor's coordinator/worker channels and the
   FHE-as-a-service server.  A frame is 4 bytes of magic, an 8-byte LE
   payload length, then the payload; the payload's own first field is a
   4-char message magic (DHEL, DREQ, SREQ, ...) read through Wire. *)

module Wire = Pytfhe_util.Wire

let frame_magic = "PTFD"
let max_frame = 1 lsl 30

exception Frame_closed
exception Frame_timeout

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        raise Frame_closed
    in
    write_all fd buf (pos + n) (len - n)
  end

(* Read exactly [len] bytes, or raise: [Frame_timeout] once [deadline]
   passes (the peer stalled mid-frame), [Frame_closed] on EOF (the peer
   died mid-frame).  [deadline = infinity] blocks indefinitely. *)
let read_exact ~deadline fd bytes off len =
  let off = ref off and remaining = ref len in
  while !remaining > 0 do
    let ready =
      if deadline = infinity then true
      else begin
        let now = Unix.gettimeofday () in
        if now >= deadline then raise Frame_timeout;
        match Unix.select [ fd ] [] [] (Float.min (deadline -. now) 0.5) with
        | [], _, _ -> false
        | _ -> true
      end
    in
    if ready then begin
      let n =
        try Unix.read fd bytes !off !remaining with
        | Unix.Unix_error (Unix.EINTR, _, _) -> -1
        | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
      in
      if n = 0 then raise Frame_closed;
      if n > 0 then begin
        off := !off + n;
        remaining := !remaining - n
      end
    end
  done

let write_frame fd payload =
  let len = Bytes.length payload in
  let header = Bytes.create 12 in
  Bytes.blit_string frame_magic 0 header 0 4;
  Bytes.set_int64_le header 4 (Int64.of_int len);
  write_all fd header 0 12;
  write_all fd payload 0 len;
  12 + len

let read_frame ?(deadline = infinity) fd =
  let header = Bytes.create 12 in
  read_exact ~deadline fd header 0 12;
  if Bytes.sub_string header 0 4 <> frame_magic then
    raise (Wire.Corrupt "Framing: bad frame magic");
  let len = Int64.to_int (Bytes.get_int64_le header 4) in
  if len < 0 || len > max_frame then
    raise (Wire.Corrupt (Printf.sprintf "Framing: implausible frame length %d" len));
  let payload = Bytes.create len in
  read_exact ~deadline fd payload 0 len;
  Bytes.unsafe_to_string payload
