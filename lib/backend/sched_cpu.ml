module Levelize = Pytfhe_circuit.Levelize

type config = { nodes : int; cost : Cost_model.cpu }

type result = {
  workers : int;
  single_thread_time : float;
  makespan : float;
  speedup : float;
  ideal_speedup : float;
  compute_time : float;
  dispatch_time : float;
  sync_time : float;
  startup_time : float;
}

let simulate config sched =
  let cost = config.cost in
  let workers = config.nodes * cost.workers_per_node in
  if workers <= 0 then invalid_arg "Sched_cpu.simulate: no workers";
  let gate = cost.gate_time +. cost.comm_time in
  let single_thread_time = float_of_int sched.Levelize.total_bootstraps *. cost.gate_time in
  let compute = ref 0.0 and dispatch = ref 0.0 and sync = ref 0.0 in
  Array.iter
    (fun width ->
      if width > 0 then begin
        let rounds = (width + workers - 1) / workers in
        (* A wave takes the longer of: the compute rounds on the workers, or
           the serialized submission of all its tasks by the scheduler. *)
        let wave_compute = float_of_int rounds *. gate in
        let wave_dispatch = float_of_int width *. cost.submit_time in
        if wave_dispatch > wave_compute then begin
          dispatch := !dispatch +. wave_dispatch;
          compute := !compute +. 0.0
        end
        else compute := !compute +. wave_compute;
        sync := !sync +. cost.sync_time
      end)
    sched.Levelize.widths;
  let makespan = cost.startup_time +. !compute +. !dispatch +. !sync in
  {
    workers;
    single_thread_time;
    makespan;
    speedup = (if makespan > 0.0 then single_thread_time /. makespan else 0.0);
    ideal_speedup = float_of_int workers;
    compute_time = !compute;
    dispatch_time = !dispatch;
    sync_time = !sync;
    startup_time = cost.startup_time;
  }

let run config net ins =
  let sched = Levelize.run net in
  let outputs = Pytfhe_circuit.Netlist.eval_outputs net ins in
  (outputs, simulate config sched)

let pp_result fmt r =
  Format.fprintf fmt
    "workers=%d single=%.2fs makespan=%.2fs speedup=%.1fx (ideal %.0fx) [compute %.2fs, dispatch %.2fs, sync %.2fs, startup %.2fs]"
    r.workers r.single_thread_time r.makespan r.speedup r.ideal_speedup r.compute_time
    r.dispatch_time r.sync_time r.startup_time

let simulate_asap config net =
  let cost = config.cost in
  let workers = config.nodes * cost.Cost_model.workers_per_node in
  if workers <= 0 then invalid_arg "Sched_cpu.simulate_asap: no workers";
  let gate_time = cost.Cost_model.gate_time +. cost.Cost_model.comm_time in
  let module N = Pytfhe_circuit.Netlist in
  let module G = Pytfhe_circuit.Gate in
  let n = N.node_count net in
  (* Reverse adjacency and indegrees over the gate DAG (counting both
     fan-ins, including duplicated ones for NOT). *)
  let child_count = Array.make n 0 in
  N.iter_gates net (fun _ _ a b ->
      child_count.(a) <- child_count.(a) + 1;
      child_count.(b) <- child_count.(b) + 1);
  let child_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    child_off.(i + 1) <- child_off.(i) + child_count.(i)
  done;
  let children = Array.make (max child_off.(n) 1) 0 in
  let fill = Array.copy child_off in
  let pending = Array.make n 0 in
  N.iter_gates net (fun id _ a b ->
      children.(fill.(a)) <- id;
      fill.(a) <- fill.(a) + 1;
      children.(fill.(b)) <- id;
      fill.(b) <- fill.(b) + 1;
      pending.(id) <- 2);
  let finish = Array.make n 0.0 in
  (* Ready-event min-heap of (time, node). *)
  let heap_t = Array.make (max n 1) 0.0 in
  let heap_id = Array.make (max n 1) 0 in
  let heap_len = ref 0 in
  let swap i j =
    let t = heap_t.(i) in
    heap_t.(i) <- heap_t.(j);
    heap_t.(j) <- t;
    let d = heap_id.(i) in
    heap_id.(i) <- heap_id.(j);
    heap_id.(j) <- d
  in
  let push time id =
    heap_t.(!heap_len) <- time;
    heap_id.(!heap_len) <- id;
    let i = ref !heap_len in
    incr heap_len;
    while !i > 0 && heap_t.((!i - 1) / 2) > heap_t.(!i) do
      swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let pop () =
    let time = heap_t.(0) and id = heap_id.(0) in
    decr heap_len;
    heap_t.(0) <- heap_t.(!heap_len);
    heap_id.(0) <- heap_id.(!heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < !heap_len && heap_t.(l) < heap_t.(!m) then m := l;
      if r < !heap_len && heap_t.(r) < heap_t.(!m) then m := r;
      if !m <> !i then begin
        swap !i !m;
        i := !m
      end
      else continue := false
    done;
    (time, id)
  in
  (* Worker pool as a second min-heap of free times. *)
  let pool = Array.make workers cost.Cost_model.startup_time in
  let pool_swap i j =
    let t = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- t
  in
  let rec pool_sift i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < workers && pool.(l) < pool.(!m) then m := l;
    if r < workers && pool.(r) < pool.(!m) then m := r;
    if !m <> i then begin
      pool_swap i !m;
      pool_sift !m
    end
  in
  let bootstraps = ref 0 in
  let makespan = ref cost.Cost_model.startup_time in
  let complete id t =
    finish.(id) <- t;
    if t > !makespan then makespan := t;
    for c = child_off.(id) to child_off.(id + 1) - 1 do
      let child = children.(c) in
      pending.(child) <- pending.(child) - 1;
      if pending.(child) = 0 then
        (* ready = max over fan-in finishes = now (this was the last). *)
        push t child
    done
  in
  (* Seed: inputs and constants are available immediately. *)
  for id = 0 to n - 1 do
    match N.kind net id with
    | N.Input _ | N.Const _ -> complete id 0.0
    | N.Gate _ | N.Lut _ -> ()
  done;
  (* Serialized submission: the dispatcher issues tasks as they become
     ready, paying submit_time each. *)
  let dispatcher = ref cost.Cost_model.startup_time in
  while !heap_len > 0 do
    let ready, id = pop () in
    match N.kind net id with
    | N.Gate (g, _, _) when G.is_unary g -> complete id ready
    | N.Gate _ | N.Lut _ ->
      (* A LUT cell is one blind rotation — priced like any bootstrapped
         gate; rotation sharing is an executor optimization the cluster
         model deliberately ignores. *)
      incr bootstraps;
      dispatcher := Float.max !dispatcher ready +. cost.Cost_model.submit_time;
      let start = Float.max (Float.max ready pool.(0)) !dispatcher in
      let f = start +. gate_time in
      pool.(0) <- f;
      pool_sift 0;
      complete id f
    | N.Input _ | N.Const _ -> ()
  done;
  let single = float_of_int !bootstraps *. cost.Cost_model.gate_time in
  {
    workers;
    single_thread_time = single;
    makespan = !makespan;
    speedup = (if !makespan > 0.0 then single /. !makespan else 0.0);
    ideal_speedup = float_of_int workers;
    compute_time = !makespan -. cost.Cost_model.startup_time;
    dispatch_time = 0.0;
    sync_time = 0.0;
    startup_time = cost.Cost_model.startup_time;
  }
