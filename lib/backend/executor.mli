(** The unified executor API: one signature every real backend implements,
    one stats record every caller consumes, one options record every
    caller passes.

    {!Tfhe_eval}, {!Par_eval} and {!Dist_eval} each grew their own run
    function and mutually incompatible stats; this module packages them as
    first-class modules of a common signature {!S} so callers — the
    server, the CLI, the bench harness, the service scheduler — select a
    backend as a value and handle results uniformly.  Backend-specific
    numbers stay reachable through {!type-stats.detail}. *)

type opts = Exec_opts.t = {
  obs : Pytfhe_obs.Trace.sink;
      (** Tracing sink; {!Pytfhe_obs.Trace.null} disables all probes. *)
  batch : int option;
      (** [Some b] routes batching-capable executors through the
          key-streaming batched kernel in sub-batches of at most [b]
          gates; [None] is the scalar per-gate path. *)
  soa : bool;
      (** Batched runs keep values in struct-of-arrays
          {!Pytfhe_tfhe.Lwe_array}s and use the row kernels (the
          default); [false] selects the record-per-gate batched walk.
          Ignored without [batch]. *)
}
(** The consolidated execution options, replacing the [?obs ?batch ?soa]
    flag triple that used to be threaded through every layer.  Build one
    by updating {!default_opts}:
    [{ Executor.default_opts with batch = Some 8 }]. *)

val default_opts : opts
(** [{ obs = Trace.null; batch = None; soa = true }]. *)

type detail =
  | Cpu_stats of Tfhe_eval.stats
  | Multicore_stats of Par_eval.stats
  | Multiprocess_stats of Dist_eval.stats

type stats = {
  backend : string;  (** The implementing module's {!S.name}. *)
  workers : int;  (** Domains or processes used; 1 for the CPU backend. *)
  bootstraps_executed : int;
  nots_executed : int;
  wall_time : float;  (** End-to-end wall seconds. *)
  wave_wall : float array;
      (** Wall seconds per wave (empty where the backend did not execute
          wave by wave — the untraced CPU walk). *)
  wave_width : int array;  (** Bootstrapped gates per wave (ditto). *)
  detail : detail;  (** The backend's full native stats. *)
}

module type S = sig
  val name : string

  val run :
    ?opts:opts ->
    Pytfhe_tfhe.Gates.cloud_keyset ->
    Pytfhe_circuit.Netlist.t ->
    Pytfhe_tfhe.Lwe.sample array ->
    Pytfhe_tfhe.Lwe.sample array * stats

  val run_stream :
    ?opts:opts ->
    ?window:int ->
    Pytfhe_tfhe.Gates.cloud_keyset ->
    (unit -> bytes option) ->
    Pytfhe_tfhe.Lwe.sample array ->
    Pytfhe_tfhe.Lwe.sample array * stats
  (** Execute a streamed binary pulled from a chunked source, without
      materialising a netlist, through {!Stream_exec.run_waves} (segment
      size [window] queued bootstraps; see
      {!Pytfhe_circuit.Binary.read_source} for a file-backed source).
      Outputs are ciphertext-bit-exact with [run] over the parsed
      netlist.  [stats.wave_width]/[wave_wall] cover executed waves in
      order; [opts.soa] is ignored on the streaming path. *)
end
(** Outputs are ciphertext-bit-exact across all implementations, batch
    sizes and layouts.  The multiprocess backend raises
    [Invalid_argument] when [opts] asks for batch or a non-default SoA
    layout (batching is worker-side there; the wire layout is
    [config.array_frames]). *)

val cpu : (module S)
(** {!Tfhe_eval} — sequential, the correctness baseline.  Name ["cpu"]. *)

val multicore : ?workers:int -> unit -> (module S)
(** {!Par_eval} on [workers] domains (default
    [Domain.recommended_domain_count ()]).  Name ["par"]. *)

val multiprocess : ?workers:int -> ?config:Dist_eval.config -> unit -> (module S)
(** {!Dist_eval} on [config.workers] processes; [config] wins over
    [workers] (default: [Dist_eval.config 2]).  Name ["dist"].  The usual
    caveat applies: the host executable must call
    {!Dist_eval.worker_entry} first in main. *)

val pp_stats : Format.formatter -> stats -> unit
(** Uniform one-line rendering, followed by the backend's own [pp] where
    it has one. *)
