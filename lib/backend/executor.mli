(** The unified executor API: one signature every real backend implements,
    one stats record every caller consumes.

    {!Tfhe_eval}, {!Par_eval} and {!Dist_eval} each grew their own run
    function and mutually incompatible stats; this module packages them as
    first-class modules of a common signature {!S} so callers — the
    server, the CLI, the bench harness — select a backend as a value and
    handle results uniformly.  Backend-specific numbers stay reachable
    through {!type-stats.detail}. *)

type detail =
  | Cpu_stats of Tfhe_eval.stats
  | Multicore_stats of Par_eval.stats
  | Multiprocess_stats of Dist_eval.stats

type stats = {
  backend : string;  (** The implementing module's {!S.name}. *)
  workers : int;  (** Domains or processes used; 1 for the CPU backend. *)
  bootstraps_executed : int;
  nots_executed : int;
  wall_time : float;  (** End-to-end wall seconds. *)
  wave_wall : float array;
      (** Wall seconds per wave (empty where the backend did not execute
          wave by wave — the untraced CPU walk). *)
  wave_width : int array;  (** Bootstrapped gates per wave (ditto). *)
  detail : detail;  (** The backend's full native stats. *)
}

module type S = sig
  val name : string

  val run :
    ?obs:Pytfhe_obs.Trace.sink ->
    ?batch:int ->
    ?soa:bool ->
    Pytfhe_tfhe.Gates.cloud_keyset ->
    Pytfhe_circuit.Netlist.t ->
    Pytfhe_tfhe.Lwe.sample array ->
    Pytfhe_tfhe.Lwe.sample array * stats
end
(** [?batch:b] routes the backend through the key-streaming batched kernel
    with sub-batches of at most [b] gates (see {!Tfhe_eval.run} and
    {!Par_eval.run}); omitted means the scalar per-gate path.
    [?soa:true] additionally runs those sub-batches through the
    struct-of-arrays row kernels on contiguous {!Pytfhe_tfhe.Lwe_array}
    waves.  Outputs are ciphertext-bit-exact every way.  The multiprocess
    backend accepts both knobs for uniformity but ignores them (batching
    is worker-side there; the wire layout is [config.array_frames]). *)

val cpu : (module S)
(** {!Tfhe_eval} — sequential, the correctness baseline. *)

val multicore : ?workers:int -> unit -> (module S)
(** {!Par_eval} on [workers] domains (default
    [Domain.recommended_domain_count ()]). *)

val multiprocess : ?workers:int -> ?config:Dist_eval.config -> unit -> (module S)
(** {!Dist_eval} on [config.workers] processes; [config] wins over
    [workers] (default: [Dist_eval.config 2]).  The usual caveat applies:
    the host executable must call {!Dist_eval.worker_entry} first in
    main. *)

val pp_stats : Format.formatter -> stats -> unit
(** Uniform one-line rendering, followed by the backend's own [pp] where
    it has one. *)
