(* Shared probe helpers for the executors.

   Every backend emits the same per-wave counter vocabulary so the flat
   metrics export is comparable across Cpu / Multicore / Multiprocess:
   [bootstraps], [key_switches], [ffts], [nots], [wave_width],
   [alloc_words], plus two noise gauges sampled once per run from the
   keyset's parameter set.

   FFTs are counted analytically rather than by instrumenting the kernel:
   one bootstrapped gate runs n CMUX iterations, and each external product
   decomposes (k+1) polynomials into l parts, transforming each part
   forward plus producing (k+1) inverse transforms — n·(k+1)·(l+1)
   transforms of size ring_n per gate, a constant of the parameter set. *)

open Pytfhe_tfhe
module Trace = Pytfhe_obs.Trace

let ffts_per_bootstrap (p : Params.t) =
  p.lwe.n * (p.tlwe.k + 1) * (p.tgsw.l + 1)

(* Bootstrapping refreshes noise, so these are constants of the parameter
   set rather than per-gate measurements: the margin (1/8, the message
   amplitude) over the worst-case phase stdev at the sign decision, and
   the resulting per-gate failure probability. *)
let noise_gauges tr (p : Params.t) =
  let sigma = sqrt (Noise.worst_gate_input p).Noise.variance in
  Trace.gauge tr ~name:"noise_margin_sigma"
    (if sigma > 0. then 0.125 /. sigma else Float.max_float);
  Trace.gauge tr ~name:"gate_failure_probability"
    (Noise.gate_failure_probability p)

let wave_counters tr (p : Params.t) ~bootstraps ~nots ~width ~alloc_words =
  Trace.counter tr ~name:"bootstraps" (float_of_int bootstraps);
  Trace.counter tr ~name:"key_switches" (float_of_int bootstraps);
  Trace.counter tr ~name:"ffts"
    (float_of_int (bootstraps * ffts_per_bootstrap p));
  Trace.counter tr ~name:"nots" (float_of_int nots);
  Trace.counter tr ~name:"wave_width" (float_of_int width);
  Trace.counter tr ~name:"alloc_words" alloc_words

(* [Gc.allocated_bytes] only reflects a domain's full minor heap after a
   flush; good enough for a per-wave counter without perturbing the run
   (same caveat as the micro bench). *)
let alloc_words () = Gc.allocated_bytes () /. 8.

(* Key-traffic units for the batched kernels: bytes of one
   bootstrapping-key entry in FFT form and of one key-switch digit block.
   Multiplying the batch counters by these gives the bytes actually
   streamed from the keys, the quantity batching amortizes. *)
let bsk_row_bytes (p : Params.t) = Bootstrap.row_bytes p

let ks_block_bytes (p : Params.t) = (1 lsl p.ks.base_bit) * (p.lwe.n + 1) * 4

(* Per-wave counters for the batched execution path, emitted in addition to
   {!wave_counters} when a [?batch] executor runs traced.  [batch_fill] is
   the mean occupancy of the launches in this wave (1.0 = every launch
   full). *)
let batch_wave_counters tr (p : Params.t) ~cap ~launches ~gates ~bsk_rows ~ks_blocks =
  Trace.counter tr ~name:"batch_waves" 1.;
  Trace.counter tr ~name:"batch_launches" (float_of_int launches);
  if launches > 0 && cap > 0 then
    Trace.counter tr ~name:"batch_fill"
      (float_of_int gates /. float_of_int (launches * cap));
  Trace.counter tr ~name:"bsk_bytes_streamed"
    (float_of_int (bsk_rows * bsk_row_bytes p));
  Trace.counter tr ~name:"ks_bytes_streamed"
    (float_of_int (ks_blocks * ks_block_bytes p))

(* Scheduler-tick counters for the FHE-as-a-service layer: admission-queue
   depth, cross-request batch occupancy — [service_batch_fill] is mean
   gates per launch, so a value above 1.0 on serial-chain workloads means
   gates from different requests really shared a bootstrap wave — and
   per-tenant wire traffic. *)
let service_counters tr ~queue_depth ~active ~launches ~gates ~cap =
  Trace.counter tr ~name:"service_queue_depth" (float_of_int queue_depth);
  Trace.counter tr ~name:"service_active_requests" (float_of_int active);
  Trace.counter tr ~name:"service_batch_launches" (float_of_int launches);
  if launches > 0 then begin
    Trace.counter tr ~name:"service_batch_gates" (float_of_int gates);
    Trace.counter tr ~name:"service_batch_fill"
      (float_of_int gates /. float_of_int launches);
    if cap > 0 then
      Trace.counter tr ~name:"service_batch_occupancy"
        (float_of_int gates /. float_of_int (launches * cap))
  end

let tenant_bytes tr ~id ~bytes_in ~bytes_out =
  Trace.counter tr
    ~name:(Printf.sprintf "service_bytes_in[%s]" id)
    (float_of_int bytes_in);
  Trace.counter tr
    ~name:(Printf.sprintf "service_bytes_out[%s]" id)
    (float_of_int bytes_out)
