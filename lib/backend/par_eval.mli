(** Real multicore TFHE execution on OCaml 5 domains.

    Where {!Sched_cpu} only *prices* the paper's distributed-CPU backend
    through a cost model, this executor actually runs every bootstrapped
    gate on LWE ciphertexts across a pool of domains.  The netlist is cut
    into waves with {!Pytfhe_circuit.Levelize}; each wave's bootstrapped
    gates are statically chunked over the pool, with unary [Not] gates
    folded in after each wave's barrier.  Every domain evaluates through a
    private {!Pytfhe_tfhe.Gates.context}, so no TGSW workspace, FFT scratch
    or test-vector buffer is shared.

    Outputs are bit-exact with {!Tfhe_eval.run} — same ciphertexts, same
    declaration-order output array — for any worker count. *)

type stats = {
  workers : int;  (** Domains used (including the calling one). *)
  bootstraps_executed : int;
  nots_executed : int;
  per_domain_bootstraps : int array;  (** Bootstrap count per domain. *)
  per_domain_busy : float array;
      (** Seconds each domain spent inside gate kernels (excludes barrier
          waits); their sum approximates single-core compute time. *)
  wave_wall : float array;  (** Wall seconds per wave, index = level. *)
  wave_width : int array;  (** Bootstrapped gates per wave. *)
  wall_time : float;  (** End-to-end wall seconds. *)
  achieved_speedup : float;
      (** Total busy time / wall time — the parallelism actually realised
          on this machine. *)
  ideal_speedup : float;
      (** Wave-synchronous bound for this DAG and worker count:
          total bootstraps / Σ ceil(width / workers).  What {!Sched_cpu}
          predicts with zero overheads. *)
  batch_size : int;  (** The [?batch] capacity used; 0 on the scalar path. *)
  batch_launches : int;  (** Batched kernel launches summed over domains. *)
  bsk_bytes_streamed : int;
      (** Bootstrapping-key bytes streamed by the batched kernels, summed
          over domains; 0 on the scalar path. *)
  ks_bytes_streamed : int;  (** Key-switch table bytes streamed; 0 scalar. *)
}

val run :
  ?workers:int ->
  ?opts:Exec_opts.t ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pytfhe_circuit.Netlist.t ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** [run ~workers cloud net inputs] evaluates the program wave by wave on
    [workers] domains (default: [Domain.recommended_domain_count ()]).
    The [batch] / [soa] / [obs] knobs discussed below ride in [?opts]
    (default {!Exec_opts.default}).
    [workers = 1] degenerates to sequential execution on the calling
    domain, with no domains spawned.  Raises [Invalid_argument] on input
    arity mismatch or [workers < 1].

    With [?batch:b] (b ≥ 1) each domain walks its static chunk of a wave
    in sub-batches of at most [b] gates through a private key-streaming
    batch context ({!Pytfhe_tfhe.Gates.batch_context}) instead of gate by
    gate — the bootstrapping key is then streamed once per sub-batch per
    domain.  By default ([?soa:true]) the batched path keeps the whole
    value table and the wave staging buffer in shared struct-of-arrays
    {!Pytfhe_tfhe.Lwe_array}s: each domain combines its gate slice into a
    disjoint row range of the staging array and runs the row-batched
    kernels, with no per-gate record materialization; the wave barrier is
    the only synchronisation needed.  [?soa:false] selects the older
    record-per-gate batched chunks (kept for benchmark attribution).
    Outputs remain bit-exact with the scalar path for any
    workers × batch × layout combination.

    With an enabled [obs] sink, each domain writes chunk spans to its own
    lock-free ["domain d"] track (drained by the coordinator at the wave
    barrier, whose mutex handshake orders the buffers), and the
    coordinator emits one span plus the standard counter set per wave on
    a ["waves"] track (plus the batch counter set when batched). *)

val run_stream :
  ?workers:int ->
  ?opts:Exec_opts.t ->
  ?window:int ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  (unit -> bytes option) ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** Multicore execution of a streamed binary through
    {!Stream_exec.run_waves}: no netlist is materialised; each wave's
    classic gates are statically chunked over the pool (scalar, or
    per-domain batched when [opts.batch] is set) and LUT rotation units are
    distributed whole.  Outputs are ciphertext-bit-exact with {!run} for
    any worker count and any [window].  [opts.soa] is ignored — the wave
    driver's value table is per-slot by construction.  [stats.wave_width] /
    [stats.wave_wall] cover executed waves in order rather than netlist
    levels, and [stats.ideal_speedup] is computed over those widths. *)

val run_legacy :
  ?workers:int ->
  ?batch:int ->
  ?soa:bool ->
  ?obs:Pytfhe_obs.Trace.sink ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pytfhe_circuit.Netlist.t ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * stats
(** @deprecated The pre-{!Exec_opts} flag triple, kept for one release. *)

val ideal_speedup : Pytfhe_circuit.Levelize.schedule -> int -> float
(** The wave-synchronous speedup bound reported in {!stats}, exposed for
    benches that sweep worker counts without executing. *)

val pp_stats : Format.formatter -> stats -> unit
