(** The GPU backend and its cuFHE baseline (paper §IV-E, Figs. 8, 9, 11).

    Two scheduling policies over the same levelized DAG and the same kernel
    cost:

    - {b cuFHE per-gate} (Fig. 8): every gate pays host-to-device copy,
      a blocking kernel launch, and a device-to-host copy, fully serialized
      on the CPU thread — the behaviour of the cuFHE gate API.
    - {b PyTFHE CUDA-Graph batches} (Fig. 9): each BFS wave becomes part of
      a fused graph; gates within a wave run [slots]-wide, copies happen
      once per program, and the next batch's construction overlaps the
      current batch's execution. *)

type timeline_segment = {
  label : string;  (** e.g. "H2D", "Kernel", "D2H", "Graph build". *)
  t_start : float;
  t_end : float;
}

type result = {
  gpu : Cost_model.gpu;
  policy : string;
  makespan : float;
  speedup_vs_single_core : float;
  timeline : timeline_segment list;  (** Only populated for small programs. *)
}

val batches_of : max_batch_nodes:int -> Pytfhe_circuit.Levelize.schedule -> int list list
(** The greedy wave-packing behind {!simulate_pytfhe}: each batch is a list
    of wave widths whose sum never exceeds [max_batch_nodes].  A single
    wave wider than the bound is split across consecutive batches (its
    gates are mutually independent, so the split preserves dependencies);
    the total node count is preserved.  Raises [Invalid_argument] when
    [max_batch_nodes < 1]. *)

val simulate_cufhe :
  Cost_model.gpu -> cpu:Cost_model.cpu -> Pytfhe_circuit.Levelize.schedule -> result

val simulate_pytfhe :
  ?max_batch_nodes:int ->
  Cost_model.gpu -> cpu:Cost_model.cpu -> Pytfhe_circuit.Levelize.schedule -> result
(** [max_batch_nodes] bounds a CUDA graph's size (GPU memory bound); waves
    are packed greedily into batches up to that size. *)

val speedup_over_cufhe :
  Cost_model.gpu -> cpu:Cost_model.cpu -> Pytfhe_circuit.Levelize.schedule -> float
(** Fig. 11's quantity: cuFHE makespan / PyTFHE makespan on the same GPU. *)

val pp_result : Format.formatter -> result -> unit

val simulate_cufhe_batched :
  Cost_model.gpu -> cpu:Cost_model.cpu -> Pytfhe_circuit.Netlist.t -> result
(** The middle ground the paper describes (§IV-E): cuFHE's own batching,
    which can vectorize independent gates *of the same type* within a wave
    but blocks the CPU between batches and still copies every ciphertext in
    and out.  Sits between the per-gate executor and the CUDA-Graph
    backend. *)
