module Wire = Pytfhe_util.Wire

type instruction =
  | Header of { gate_total : int }
  | Input_decl of { index : int }
  | Gate_inst of { gate : Gate.t; in0 : int; in1 : int }
  | Lut_inst of { table : int; ins : int array }
  | Output_decl of { index : int }

let all_ones_62 = 0x3FFFFFFFFFFFFFFF
let tag_header = 0x0
let tag_input = 0xF
let tag_output = 0x3
let tag_lut = 0xC

(* LUT record B-field layout: arity in bits 0–1, table in 2–9, second and
   third operands in 10–35 and 36–61 (26 bits each); in0 rides the A field. *)
let lut_operand_mask = 0x3FFFFFF

let encode_words a b tag =
  let b64 = Int64.of_int b in
  let lo = Int64.logor (Int64.shift_left b64 4) (Int64.of_int (tag land 0xF)) in
  let hi =
    Int64.logor (Int64.shift_left (Int64.of_int a) 2) (Int64.shift_right_logical b64 60)
  in
  (lo, hi)

let decode_words lo hi =
  let tag = Int64.to_int (Int64.logand lo 0xFL) in
  let b =
    Int64.to_int
      (Int64.logand
         (Int64.logor (Int64.shift_right_logical lo 4) (Int64.shift_left hi 60))
         0x3FFFFFFFFFFFFFFFL)
  in
  let a = Int64.to_int (Int64.logand (Int64.shift_right_logical hi 2) 0x3FFFFFFFFFFFFFFFL) in
  (a, b, tag)

let instruction_words = function
  | Header { gate_total } -> encode_words 0 gate_total tag_header
  | Input_decl { index } -> encode_words all_ones_62 index tag_input
  | Gate_inst { gate; in0; in1 } -> encode_words in0 in1 (Gate.to_code gate)
  | Lut_inst { table; ins } ->
    let arity = Array.length ins in
    let in1 = if arity > 1 then ins.(1) else 0 in
    let in2 = if arity > 2 then ins.(2) else 0 in
    encode_words ins.(0) (arity lor (table lsl 2) lor (in1 lsl 10) lor (in2 lsl 36)) tag_lut
  | Output_decl { index } -> encode_words all_ones_62 index tag_output

let decode_lut a b =
  (* Malformed LUT records are data corruption, not programming errors:
     they raise {!Wire.Corrupt} so executors reject hostile streams
     gracefully. *)
  let corrupt msg = raise (Wire.Corrupt ("Binary: " ^ msg)) in
  let arity = b land 0x3 in
  let table = (b lsr 2) land 0xFF in
  let in1 = (b lsr 10) land lut_operand_mask in
  let in2 = (b lsr 36) land lut_operand_mask in
  if arity = 0 then corrupt "LUT record with arity 0";
  if table >= 1 lsl (1 lsl arity) then
    corrupt (Printf.sprintf "LUT table %#x too wide for arity %d" table arity);
  if arity < 3 && in2 <> 0 then corrupt "nonzero reserved operand bits in LUT record";
  if arity < 2 && in1 <> 0 then corrupt "nonzero reserved operand bits in LUT record";
  let ins = Array.sub [| a; in1; in2 |] 0 arity in
  Lut_inst { table; ins }

let instruction_of_words lo hi =
  let a, b, tag = decode_words lo hi in
  if tag = tag_header && a = 0 then Header { gate_total = b }
  else if tag = tag_input && a = all_ones_62 then Input_decl { index = b }
  else if tag = tag_output && a = all_ones_62 then Output_decl { index = b }
  else if tag = tag_lut then decode_lut a b
  else
    match Gate.of_code tag with
    | Some gate -> Gate_inst { gate; in0 = a; in1 = b }
    | None -> failwith (Printf.sprintf "Binary.disassemble: unknown instruction tag %d" tag)

let pp_instruction fmt = function
  | Header { gate_total } -> Format.fprintf fmt "header  gates=%d" gate_total
  | Input_decl { index } -> Format.fprintf fmt "input   -> %d" index
  | Gate_inst { gate; in0; in1 } -> Format.fprintf fmt "%-7s %d, %d" (Gate.name gate) in0 in1
  | Lut_inst { table; ins } ->
    Format.fprintf fmt "lut%d/%#-4x %s" (Array.length ins) table
      (String.concat ", " (Array.to_list (Array.map string_of_int ins)))
  | Output_decl { index } -> Format.fprintf fmt "output  <- %d" index

let emit buf inst =
  let lo, hi = instruction_words inst in
  Buffer.add_int64_le buf lo;
  Buffer.add_int64_le buf hi

(* A streamed binary's header cannot know the final gate count up front, so
   it carries this sentinel; executors treat it as "unknown" and skip the
   gate-budget check.  Buffered producers backpatch the real count. *)
let streamed_gate_total = all_ones_62

let patch_header bytes gate_total =
  if Bytes.length bytes < 16 then failwith "Binary.patch_header: no header instruction";
  let lo, hi = instruction_words (Header { gate_total }) in
  Bytes.set_int64_le bytes 0 lo;
  Bytes.set_int64_le bytes 8 hi

(* ------------------------------------------------------------------ *)
(* Streaming assembler                                                 *)
(* ------------------------------------------------------------------ *)

(* Emits the instruction stream node by node, in netlist id order, as
   construction proceeds — peak memory is one output chunk, not the whole
   binary.  Index assignment is identical to the one-shot [assemble] for
   input-first netlists (the only kind the frontends build): inputs and
   gates take consecutive stream indices in id order, and a constant
   materialises at its own id slot as XOR/XNOR over the first input.
   Nodes created before any input exists are deferred and flushed when the
   first input arrives; a netlist whose outputs never gain an index (live
   constants, no inputs) is rejected at [finish]. *)
module Emit = struct
  type t = {
    net : Netlist.t;
    write : bytes -> unit;
    chunk : int;  (* flush threshold in bytes *)
    buf : Buffer.t;
    mutable index_of : int array;  (* netlist id -> stream index; -1 unassigned *)
    mutable next : int;  (* next stream index *)
    mutable first_input : int;  (* stream index of the first input; -1 until seen *)
    mutable deferred : int list;  (* reversed ids awaiting the first input *)
    mutable gate_total : int;
    mutable bytes_emitted : int;
    mutable finished : bool;
  }

  let create ?(chunk = 1 lsl 16) ~write net =
    let e =
      {
        net;
        write;
        chunk = max chunk 16;
        buf = Buffer.create 4096;
        index_of = Array.make 1024 (-1);
        next = 1;
        first_input = -1;
        deferred = [];
        gate_total = 0;
        bytes_emitted = 0;
        finished = false;
      }
    in
    emit e.buf (Header { gate_total = streamed_gate_total });
    e

  let maybe_flush e =
    if Buffer.length e.buf >= e.chunk then begin
      e.bytes_emitted <- e.bytes_emitted + Buffer.length e.buf;
      e.write (Buffer.to_bytes e.buf);
      Buffer.clear e.buf
    end

  let index_of e id =
    if id < Array.length e.index_of then e.index_of.(id) else -1

  let assign e id =
    let n = Array.length e.index_of in
    if id >= n then begin
      let grown = Array.make (max (2 * n) (id + 1)) (-1) in
      Array.blit e.index_of 0 grown 0 n;
      e.index_of <- grown
    end;
    let index = e.next in
    e.index_of.(id) <- index;
    e.next <- index + 1;
    index

  let rec note e id =
    if e.finished then invalid_arg "Binary.Emit.note: emitter already finished";
    match Netlist.kind e.net id with
    | Netlist.Input _ ->
      let index = assign e id in
      emit e.buf (Input_decl { index });
      maybe_flush e;
      if e.first_input < 0 then begin
        e.first_input <- index;
        let pending = List.rev e.deferred in
        e.deferred <- [];
        List.iter (note e) pending
      end
    | Netlist.Const v ->
      if e.first_input < 0 then e.deferred <- id :: e.deferred
      else begin
        (* XOR(i,i) = 0, XNOR(i,i) = 1. *)
        ignore (assign e id);
        let g = if v then Gate.Xnor else Gate.Xor in
        emit e.buf (Gate_inst { gate = g; in0 = e.first_input; in1 = e.first_input });
        e.gate_total <- e.gate_total + 1;
        maybe_flush e
      end
    | Netlist.Gate (g, a, b) ->
      if index_of e a < 0 || index_of e b < 0 then e.deferred <- id :: e.deferred
      else begin
        let in0 = index_of e a and in1 = index_of e b in
        ignore (assign e id);
        emit e.buf (Gate_inst { gate = g; in0; in1 });
        e.gate_total <- e.gate_total + 1;
        maybe_flush e
      end
    | Netlist.Lut { table; ins } ->
      if Array.exists (fun a -> index_of e a < 0) ins then e.deferred <- id :: e.deferred
      else begin
        let mapped = Array.map (fun a -> index_of e a) ins in
        Array.iteri
          (fun j idx ->
            if j > 0 && idx > lut_operand_mask then
              failwith "Binary.assemble: LUT operand index exceeds the 26-bit record field")
          mapped;
        ignore (assign e id);
        emit e.buf (Lut_inst { table; ins = mapped });
        e.gate_total <- e.gate_total + 1;
        maybe_flush e
      end

  let attach e = Netlist.set_observer e.net (note e)

  let finish e =
    if e.finished then invalid_arg "Binary.Emit.finish: emitter already finished";
    e.finished <- true;
    (* Deferred gates reference constants in an input-less netlist; deferred
       constants are fatal only when something observable needs them. *)
    let deferred_live =
      List.exists (fun id -> match Netlist.kind e.net id with Netlist.Const _ -> false | _ -> true)
        e.deferred
      || List.exists (fun (_, id) -> index_of e id < 0) (Netlist.outputs e.net)
    in
    if deferred_live then
      failwith "Binary.assemble: live constants but no inputs to derive them from";
    List.iter
      (fun (_, id) ->
        let index = index_of e id in
        if index < 0 then failwith "Binary.assemble: output references an unemitted node";
        emit e.buf (Output_decl { index }))
      (Netlist.outputs e.net);
    e.bytes_emitted <- e.bytes_emitted + Buffer.length e.buf;
    e.write (Buffer.to_bytes e.buf);
    Buffer.clear e.buf;
    e.gate_total

  let bytes_emitted e = e.bytes_emitted + Buffer.length e.buf
  let gate_total e = e.gate_total
end

let assemble net =
  let out = Buffer.create 1024 in
  let e = Emit.create ~chunk:max_int ~write:(Buffer.add_bytes out) net in
  for id = 0 to Netlist.node_count net - 1 do
    Emit.note e id
  done;
  let gate_total = Emit.finish e in
  let bytes = Buffer.to_bytes out in
  patch_header bytes gate_total;
  bytes

let instruction_count bytes =
  let len = Bytes.length bytes in
  if len mod 16 <> 0 then failwith "Binary: truncated instruction stream";
  len / 16

let disassemble bytes =
  let count = instruction_count bytes in
  if count = 0 then failwith "Binary.disassemble: empty stream";
  let insts =
    List.init count (fun i ->
        instruction_of_words (Bytes.get_int64_le bytes (16 * i)) (Bytes.get_int64_le bytes ((16 * i) + 8)))
  in
  (match insts with
  | Header _ :: _ -> ()
  | _ -> failwith "Binary.disassemble: missing header instruction");
  insts

(* Incremental netlist rebuilder over an instruction stream.  Stream indices
   are sequential from 1, so the index → id table is a dense growable vector
   rather than a hashtable — O(1) with no boxing at multi-million-gate
   scale. *)
module Parser = struct
  module Growable = Pytfhe_util.Growable

  type t = {
    net : Netlist.t;
    table : Growable.t;  (* position index-1 holds the netlist id *)
    mutable saw_header : bool;
    mutable n_inputs : int;
    mutable n_outputs : int;
  }

  let create () =
    {
      net = Netlist.create ~hash_consing:false ~fold_constants:false ();
      table = Growable.create ~capacity:1024 ();
      saw_header = false;
      n_inputs = 0;
      n_outputs = 0;
    }

  let resolve p index =
    if index >= 1 && index <= Growable.length p.table then Growable.get p.table (index - 1)
    else failwith (Printf.sprintf "Binary.parse: forward or dangling reference %d" index)

  let feed p inst =
    (match inst with
    | Header _ -> ()
    | _ ->
      if not p.saw_header then failwith "Binary.parse: missing header instruction");
    match inst with
    | Header _ -> p.saw_header <- true
    | Input_decl { index } ->
      if index <> Growable.length p.table + 1 then
        failwith "Binary.parse: non-sequential input index";
      let id = Netlist.input p.net (Printf.sprintf "in%d" p.n_inputs) in
      p.n_inputs <- p.n_inputs + 1;
      Growable.push p.table id
    | Gate_inst { gate; in0; in1 } ->
      Growable.push p.table (Netlist.gate p.net gate (resolve p in0) (resolve p in1))
    | Lut_inst { table = lut_table; ins } ->
      let id =
        try Netlist.lut p.net ~table:lut_table (Array.map (resolve p) ins)
        with Invalid_argument msg -> raise (Pytfhe_util.Wire.Corrupt ("Binary.parse: " ^ msg))
      in
      Growable.push p.table id
    | Output_decl { index } ->
      Netlist.mark_output p.net (Printf.sprintf "out%d" p.n_outputs) (resolve p index);
      p.n_outputs <- p.n_outputs + 1

  let finish p =
    if not p.saw_header then failwith "Binary.parse: missing header instruction";
    p.net
end

let parse bytes =
  let p = Parser.create () in
  let count = instruction_count bytes in
  if count = 0 then failwith "Binary.disassemble: empty stream";
  for i = 0 to count - 1 do
    Parser.feed p
      (instruction_of_words (Bytes.get_int64_le bytes (16 * i)) (Bytes.get_int64_le bytes ((16 * i) + 8)))
  done;
  Parser.finish p

let write_file path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc bytes)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let bytes = Bytes.create len in
      really_input ic bytes 0 len;
      bytes)

let iter bytes f =
  let count = instruction_count bytes in
  if count = 0 then failwith "Binary.iter: empty stream";
  for i = 0 to count - 1 do
    f (instruction_of_words (Bytes.get_int64_le bytes (16 * i)) (Bytes.get_int64_le bytes ((16 * i) + 8)))
  done

let iter_source read f =
  (* Chunks arrive with arbitrary framing; a partial 16-byte instruction is
     carried across chunk boundaries in [pending]. *)
  let pending = Bytes.create 16 in
  let fill = ref 0 in
  let any = ref false in
  let feed chunk =
    let len = Bytes.length chunk in
    let pos = ref 0 in
    if !fill > 0 then begin
      let take = min (16 - !fill) len in
      Bytes.blit chunk 0 pending !fill take;
      fill := !fill + take;
      pos := take;
      if !fill = 16 then begin
        f (instruction_of_words (Bytes.get_int64_le pending 0) (Bytes.get_int64_le pending 8));
        any := true;
        fill := 0
      end
    end;
    while len - !pos >= 16 do
      f (instruction_of_words (Bytes.get_int64_le chunk !pos) (Bytes.get_int64_le chunk (!pos + 8)));
      any := true;
      pos := !pos + 16
    done;
    let rest = len - !pos in
    if rest > 0 then begin
      Bytes.blit chunk !pos pending 0 rest;
      fill := rest
    end
  in
  let rec loop () =
    match read () with
    | Some chunk ->
      feed chunk;
      loop ()
    | None ->
      if !fill <> 0 then failwith "Binary: truncated instruction stream";
      if not !any then failwith "Binary.iter_source: empty stream"
  in
  loop ()

let parse_source read =
  let p = Parser.create () in
  iter_source read (Parser.feed p);
  Parser.finish p

let read_source ?(chunk = 1 lsl 16) ic =
  let buf = Bytes.create chunk in
  fun () ->
    let n = input ic buf 0 chunk in
    if n = 0 then None else Some (Bytes.sub buf 0 n)
