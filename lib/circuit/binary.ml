module Wire = Pytfhe_util.Wire

type instruction =
  | Header of { gate_total : int }
  | Input_decl of { index : int }
  | Gate_inst of { gate : Gate.t; in0 : int; in1 : int }
  | Lut_inst of { table : int; ins : int array }
  | Output_decl of { index : int }

let all_ones_62 = 0x3FFFFFFFFFFFFFFF
let tag_header = 0x0
let tag_input = 0xF
let tag_output = 0x3
let tag_lut = 0xC

(* LUT record B-field layout: arity in bits 0–1, table in 2–9, second and
   third operands in 10–35 and 36–61 (26 bits each); in0 rides the A field. *)
let lut_operand_mask = 0x3FFFFFF

let encode_words a b tag =
  let b64 = Int64.of_int b in
  let lo = Int64.logor (Int64.shift_left b64 4) (Int64.of_int (tag land 0xF)) in
  let hi =
    Int64.logor (Int64.shift_left (Int64.of_int a) 2) (Int64.shift_right_logical b64 60)
  in
  (lo, hi)

let decode_words lo hi =
  let tag = Int64.to_int (Int64.logand lo 0xFL) in
  let b =
    Int64.to_int
      (Int64.logand
         (Int64.logor (Int64.shift_right_logical lo 4) (Int64.shift_left hi 60))
         0x3FFFFFFFFFFFFFFFL)
  in
  let a = Int64.to_int (Int64.logand (Int64.shift_right_logical hi 2) 0x3FFFFFFFFFFFFFFFL) in
  (a, b, tag)

let instruction_words = function
  | Header { gate_total } -> encode_words 0 gate_total tag_header
  | Input_decl { index } -> encode_words all_ones_62 index tag_input
  | Gate_inst { gate; in0; in1 } -> encode_words in0 in1 (Gate.to_code gate)
  | Lut_inst { table; ins } ->
    let arity = Array.length ins in
    let in1 = if arity > 1 then ins.(1) else 0 in
    let in2 = if arity > 2 then ins.(2) else 0 in
    encode_words ins.(0) (arity lor (table lsl 2) lor (in1 lsl 10) lor (in2 lsl 36)) tag_lut
  | Output_decl { index } -> encode_words all_ones_62 index tag_output

let decode_lut a b =
  (* Malformed LUT records are data corruption, not programming errors:
     they raise {!Wire.Corrupt} so executors reject hostile streams
     gracefully. *)
  let corrupt msg = raise (Wire.Corrupt ("Binary: " ^ msg)) in
  let arity = b land 0x3 in
  let table = (b lsr 2) land 0xFF in
  let in1 = (b lsr 10) land lut_operand_mask in
  let in2 = (b lsr 36) land lut_operand_mask in
  if arity = 0 then corrupt "LUT record with arity 0";
  if table >= 1 lsl (1 lsl arity) then
    corrupt (Printf.sprintf "LUT table %#x too wide for arity %d" table arity);
  if arity < 3 && in2 <> 0 then corrupt "nonzero reserved operand bits in LUT record";
  if arity < 2 && in1 <> 0 then corrupt "nonzero reserved operand bits in LUT record";
  let ins = Array.sub [| a; in1; in2 |] 0 arity in
  Lut_inst { table; ins }

let instruction_of_words lo hi =
  let a, b, tag = decode_words lo hi in
  if tag = tag_header && a = 0 then Header { gate_total = b }
  else if tag = tag_input && a = all_ones_62 then Input_decl { index = b }
  else if tag = tag_output && a = all_ones_62 then Output_decl { index = b }
  else if tag = tag_lut then decode_lut a b
  else
    match Gate.of_code tag with
    | Some gate -> Gate_inst { gate; in0 = a; in1 = b }
    | None -> failwith (Printf.sprintf "Binary.disassemble: unknown instruction tag %d" tag)

let pp_instruction fmt = function
  | Header { gate_total } -> Format.fprintf fmt "header  gates=%d" gate_total
  | Input_decl { index } -> Format.fprintf fmt "input   -> %d" index
  | Gate_inst { gate; in0; in1 } -> Format.fprintf fmt "%-7s %d, %d" (Gate.name gate) in0 in1
  | Lut_inst { table; ins } ->
    Format.fprintf fmt "lut%d/%#-4x %s" (Array.length ins) table
      (String.concat ", " (Array.to_list (Array.map string_of_int ins)))
  | Output_decl { index } -> Format.fprintf fmt "output  <- %d" index

let emit buf inst =
  let lo, hi = instruction_words inst in
  Buffer.add_int64_le buf lo;
  Buffer.add_int64_le buf hi

let assemble net =
  let n = Netlist.node_count net in
  (* Liveness of constant nodes: they need materialisation only if used. *)
  let used = Array.make n false in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Gate (_, a, b) ->
      used.(a) <- true;
      used.(b) <- true
    | Netlist.Lut { ins; _ } -> Array.iter (fun a -> used.(a) <- true) ins
    | Netlist.Input _ | Netlist.Const _ -> ()
  done;
  List.iter (fun (_, id) -> used.(id) <- true) (Netlist.outputs net);
  let index_of = Array.make n (-1) in
  let next = ref 1 in
  let assign id =
    index_of.(id) <- !next;
    incr next
  in
  let buf = Buffer.create 1024 in
  let inputs = Netlist.inputs net in
  let const_gates = ref [] in
  let materialise_const id value =
    if used.(id) then begin
      match inputs with
      | [] -> failwith "Binary.assemble: live constants but no inputs to derive them from"
      | (_, first_input) :: _ ->
        (* XOR(i,i) = 0, XNOR(i,i) = 1. *)
        let g = if value then Gate.Xnor else Gate.Xor in
        let src = index_of.(first_input) in
        assign id;
        const_gates := Gate_inst { gate = g; in0 = src; in1 = src } :: !const_gates
    end
  in
  List.iter (fun (_, id) -> assign id) inputs;
  (* Constants come right after the inputs so every later gate can refer to
     them. *)
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Const v -> materialise_const id v
    | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> ()
  done;
  let gate_insts = ref (List.rev !const_gates) in
  let tail = ref [] in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Gate (g, a, b) ->
      assign id;
      tail := Gate_inst { gate = g; in0 = index_of.(a); in1 = index_of.(b) } :: !tail
    | Netlist.Lut { table; ins } ->
      assign id;
      let mapped = Array.map (fun a -> index_of.(a)) ins in
      Array.iteri
        (fun j idx ->
          if j > 0 && idx > lut_operand_mask then
            failwith "Binary.assemble: LUT operand index exceeds the 26-bit record field")
        mapped;
      tail := Lut_inst { table; ins = mapped } :: !tail
    | Netlist.Input _ | Netlist.Const _ -> ()
  done;
  let gate_insts = !gate_insts @ List.rev !tail in
  emit buf (Header { gate_total = List.length gate_insts });
  List.iter (fun (_, id) -> emit buf (Input_decl { index = index_of.(id) })) inputs;
  List.iter (emit buf) gate_insts;
  List.iter (fun (_, id) -> emit buf (Output_decl { index = index_of.(id) })) (Netlist.outputs net);
  Buffer.to_bytes buf

let instruction_count bytes =
  let len = Bytes.length bytes in
  if len mod 16 <> 0 then failwith "Binary: truncated instruction stream";
  len / 16

let disassemble bytes =
  let count = instruction_count bytes in
  if count = 0 then failwith "Binary.disassemble: empty stream";
  let insts =
    List.init count (fun i ->
        instruction_of_words (Bytes.get_int64_le bytes (16 * i)) (Bytes.get_int64_le bytes ((16 * i) + 8)))
  in
  (match insts with
  | Header _ :: _ -> ()
  | _ -> failwith "Binary.disassemble: missing header instruction");
  insts

let parse bytes =
  let insts = disassemble bytes in
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let table = Hashtbl.create 1024 in
  let resolve index =
    match Hashtbl.find_opt table index with
    | Some id -> id
    | None -> failwith (Printf.sprintf "Binary.parse: forward or dangling reference %d" index)
  in
  let next = ref 1 in
  let n_inputs = ref 0 and n_outputs = ref 0 in
  List.iter
    (fun inst ->
      match inst with
      | Header _ -> ()
      | Input_decl { index } ->
        if index <> !next then failwith "Binary.parse: non-sequential input index";
        let id = Netlist.input net (Printf.sprintf "in%d" !n_inputs) in
        incr n_inputs;
        Hashtbl.add table index id;
        incr next
      | Gate_inst { gate; in0; in1 } ->
        let id = Netlist.gate net gate (resolve in0) (resolve in1) in
        Hashtbl.add table !next id;
        incr next
      | Lut_inst { table = lut_table; ins } ->
        let id =
          try Netlist.lut net ~table:lut_table (Array.map resolve ins)
          with Invalid_argument msg -> raise (Pytfhe_util.Wire.Corrupt ("Binary.parse: " ^ msg))
        in
        Hashtbl.add table !next id;
        incr next
      | Output_decl { index } ->
        Netlist.mark_output net (Printf.sprintf "out%d" !n_outputs) (resolve index);
        incr n_outputs)
    insts;
  net

let write_file path bytes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc bytes)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let bytes = Bytes.create len in
      really_input ic bytes 0 len;
      bytes)

let iter bytes f =
  let count = instruction_count bytes in
  if count = 0 then failwith "Binary.iter: empty stream";
  for i = 0 to count - 1 do
    f (instruction_of_words (Bytes.get_int64_le bytes (16 * i)) (Bytes.get_int64_le bytes ((16 * i) + 8)))
  done
