let export ?(max_nodes = 5000) ?(graph_name = "pytfhe") net =
  if Netlist.node_count net > max_nodes then
    invalid_arg
      (Printf.sprintf "Dot.export: %d nodes exceeds the limit %d" (Netlist.node_count net) max_nodes);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" graph_name);
  List.iter
    (fun (name, id) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box, style=filled, fillcolor=lightblue, label=%S];\n" id name))
    (Netlist.inputs net);
  for id = 0 to Netlist.node_count net - 1 do
    match Netlist.kind net id with
    | Netlist.Const b ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box, style=filled, fillcolor=gray, label=\"%d\"];\n" id
           (Bool.to_int b))
    | Netlist.Gate (g, a, b) ->
      Buffer.add_string buf (Printf.sprintf "  n%d [shape=ellipse, label=%S];\n" id (Gate.name g));
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a id);
      if not (Gate.is_unary g) then Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" b id)
    | Netlist.Lut { table; ins } ->
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [shape=hexagon, style=filled, fillcolor=gold, label=\"lut%d:%#x\"];\n" id
           (Array.length ins) table);
      Array.iter (fun a -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a id)) ins
    | Netlist.Input _ -> ()
  done;
  List.iteri
    (fun i (name, id) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  o%d [shape=box, style=filled, fillcolor=lightgreen, label=%S];\n  n%d -> o%d;\n" i
           name id i))
    (Netlist.outputs net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
