type t = {
  nodes : int;
  inputs : int;
  outputs : int;
  gates : int;
  bootstraps : int;
  luts : int;
  reencodes : int;
  lut_groups : int;
  per_gate : (Gate.t * int) list;
  depth : int;
  max_width : int;
  average_width : float;
  serial_fraction : float;
}

let compute net =
  let counts = Array.make 12 0 in
  Netlist.iter_gates net (fun _ g _ _ ->
      let c = Gate.to_code g in
      counts.(c) <- counts.(c) + 1);
  let per_gate = List.map (fun g -> (g, counts.(Gate.to_code g))) Gate.all in
  let sched = Levelize.run net in
  {
    nodes = Netlist.node_count net;
    inputs = Netlist.input_count net;
    outputs = List.length (Netlist.outputs net);
    gates = Netlist.gate_count net;
    bootstraps = Netlist.bootstrap_count net;
    luts = Netlist.lut_count net;
    reencodes = Netlist.reencode_count net;
    lut_groups = Netlist.lut_group_count net;
    per_gate;
    depth = sched.Levelize.depth;
    max_width = Levelize.max_width sched;
    average_width = Levelize.average_width sched;
    serial_fraction = Levelize.serial_fraction sched;
  }

let pp_distribution fmt t =
  let total = max t.gates 1 in
  List.iter
    (fun (g, c) ->
      if c > 0 then
        Format.fprintf fmt "  %-6s %9d  (%5.1f%%)@." (Gate.name g) c
          (100.0 *. float_of_int c /. float_of_int total))
    t.per_gate

let pp fmt t =
  Format.fprintf fmt
    "nodes=%d inputs=%d outputs=%d gates=%d bootstraps=%d depth=%d max_width=%d avg_width=%.1f serial=%.1f%%@."
    t.nodes t.inputs t.outputs t.gates t.bootstraps t.depth t.max_width t.average_width
    (100.0 *. t.serial_fraction);
  if t.luts + t.reencodes > 0 then
    Format.fprintf fmt "  luts=%d (in %d rotation groups) reencodes=%d@." t.luts t.lut_groups
      t.reencodes;
  pp_distribution fmt t
