(** Netlist statistics: the quantities the paper's evaluation reports
    (gate totals, per-type distribution for Fig. 14, depth and width for the
    scheduling discussion). *)

type t = {
  nodes : int;
  inputs : int;
  outputs : int;
  gates : int;
  bootstraps : int;
      (** Blind rotations an execution performs: all gates but NOT, every
          arity-1 LUT cell, one per LUT rotation group. *)
  luts : int;  (** Multi-input (arity ≥ 2) programmable LUT cells. *)
  reencodes : int;  (** Arity-1 LUT cells (classic → lutdom conversions). *)
  lut_groups : int;  (** Distinct rotation groups among the LUT cells. *)
  per_gate : (Gate.t * int) list;  (** Count per gate type, encoding order. *)
  depth : int;  (** Critical path in bootstrapped gates. *)
  max_width : int;
  average_width : float;
  serial_fraction : float;
}

val compute : Netlist.t -> t
(** Single pass over the netlist plus a levelization. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)

val pp_distribution : Format.formatter -> t -> unit
(** One line per gate type with count and percentage (Fig. 14 style). *)
