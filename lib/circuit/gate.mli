(** The eleven TFHE gate types.

    These are exactly the bootstrapped gates the backend can evaluate; each
    costs one bootstrapping except [Not], which is a noiseless negation.
    The 4-bit encodings match the PyTFHE binary format (XOR = 0110 as in the
    paper's Fig. 6). *)

type t =
  | Nand
  | And
  | Or
  | Nor
  | Xnor
  | Xor
  | Not  (** Unary; the second fan-in is ignored. *)
  | Andny  (** (¬a) ∧ b *)
  | Andyn  (** a ∧ (¬b) *)
  | Orny  (** (¬a) ∨ b *)
  | Oryn  (** a ∨ (¬b) *)

val all : t list
(** Every gate type, in encoding order. *)

val name : t -> string
(** Lower-case mnemonic, e.g. ["xor"]. *)

val to_code : t -> int
(** The 4-bit binary-format encoding (1–11). *)

val of_code : int -> t option
(** Inverse of {!to_code}. *)

val eval : t -> bool -> bool -> bool
(** Plaintext semantics. [Not] uses only its first argument. *)

val is_unary : t -> bool
(** True only for [Not]. *)

val is_commutative : t -> bool
(** True when swapping fan-ins preserves the function (used for
    canonicalisation before hash-consing). *)

val swap : t -> t option
(** [swap g] is the gate [g'] with [g' (b, a) = g (a, b)] when one exists
    among the eleven types (e.g. [Andny ↔ Andyn]); [None] for [Not]. *)

val table_of : t -> int option
(** The 4-bit truth table of a binary gate — bit [2a+b] is [eval g a b],
    the MSB-first message convention of the LUT cells; [None] for [Not]. *)

val of_table : int -> t option
(** The library gate realising a 4-bit table, when one exists. *)

val pp : Format.formatter -> t -> unit
