(** BFS levelization of a TFHE program DAG — the paper's Algorithm 1.

    Nodes whose fan-ins are all ready form the next wave of computable
    gates; the wave index is the node's level.  Level widths are the
    parallelism profile every backend scheduler consumes: wide levels scale
    across workers or streaming multiprocessors, narrow ones are the serial
    tail the paper blames for the modest speedups of NRSolver-style
    benchmarks.

    [Not] gates are noiseless and evaluated inline, so they do not advance
    the level and do not count toward widths. *)

type schedule = {
  level : int array;  (** Wave index per node (inputs and constants: 0). *)
  depth : int;  (** Number of waves = critical path in bootstrapped gates. *)
  widths : int array;  (** [widths.(l-1)]: bootstrapped gates in wave [l]. *)
  total_bootstraps : int;
}

val run : Netlist.t -> schedule
(** Levelize a netlist in one topological sweep. *)

type wave = {
  parallel : Netlist.id array;
      (** Bootstrapped gates of this level, ascending id.  Their fan-ins all
          live in strictly earlier waves, so they may execute in any order —
          or concurrently — within the wave. *)
  inline : Netlist.id array;
      (** Noiseless [Not] gates at this level, ascending id.  They may read
          this wave's [parallel] results (and each other, ids ascending), so
          they run after the parallel phase of the same wave. *)
}

val waves : schedule -> Netlist.t -> wave array
(** [waves s net] materialises the schedule as [s.depth + 1] executable
    waves (wave 0 holds only unary gates fed by inputs/constants).  This is
    the work list a parallel executor fans out, one wave barrier at a
    time. *)

val max_width : schedule -> int
(** Widest wave — the peak exploitable parallelism. *)

val average_width : schedule -> float
(** Mean bootstrapped gates per wave ([0.] for gate-free circuits). *)

val serial_fraction : schedule -> float
(** Fraction of waves of width 1 — a proxy for how serial the workload is. *)
