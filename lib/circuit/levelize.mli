(** BFS levelization of a TFHE program DAG — the paper's Algorithm 1.

    Nodes whose fan-ins are all ready form the next wave of computable
    gates; the wave index is the node's level.  Level widths are the
    parallelism profile every backend scheduler consumes: wide levels scale
    across workers or streaming multiprocessors, narrow ones are the serial
    tail the paper blames for the modest speedups of NRSolver-style
    benchmarks.

    [Not] gates are noiseless and evaluated inline, so they do not advance
    the level and do not count toward widths. *)

type schedule = {
  level : int array;  (** Wave index per node (inputs and constants: 0). *)
  depth : int;  (** Number of waves = critical path in bootstrapped gates. *)
  widths : int array;  (** [widths.(l-1)]: bootstrapped gates in wave [l]. *)
  total_bootstraps : int;
}

val run : Netlist.t -> schedule
(** Levelize a netlist in one topological sweep. *)

(** Incremental levelization for the streaming compiler: the placement rule
    of {!run}, maintained node by node as construction proceeds, so each
    node's wave is known the moment it is built and no final sweep over the
    whole DAG is needed. *)
module Inc : sig
  type t

  val create : Netlist.t -> t

  val note : t -> Netlist.id -> unit
  (** Place one node.  Ids must arrive in ascending order starting at 0
      (raise [Invalid_argument] otherwise) — i.e. straight from
      {!Netlist.set_observer}. *)

  val catch_up : t -> unit
  (** Place every node built since the last call ([note] driven by a loop
      rather than an observer). *)

  val level : t -> Netlist.id -> int
  (** Level of an already-placed node. *)

  val depth : t -> int
  val total_bootstraps : t -> int

  val schedule : t -> schedule
  (** Snapshot as a {!schedule} (after an implicit {!catch_up}); agrees
      exactly with [run net] over the same netlist. *)
end

type wave = {
  parallel : Netlist.id array;
      (** Bootstrapped gates of this level, ascending id.  Their fan-ins all
          live in strictly earlier waves, so they may execute in any order —
          or concurrently — within the wave. *)
  inline : Netlist.id array;
      (** Noiseless [Not] gates at this level, ascending id.  They may read
          this wave's [parallel] results (and each other, ids ascending), so
          they run after the parallel phase of the same wave. *)
}

val waves : schedule -> Netlist.t -> wave array
(** [waves s net] materialises the schedule as [s.depth + 1] executable
    waves (wave 0 holds only unary gates fed by inputs/constants).  This is
    the work list a parallel executor fans out, one wave barrier at a
    time. *)

val max_width : schedule -> int
(** Widest wave — the peak exploitable parallelism. *)

val average_width : schedule -> float
(** Mean bootstrapped gates per wave ([0.] for gate-free circuits). *)

val serial_fraction : schedule -> float
(** Fraction of waves of width 1 — a proxy for how serial the workload is. *)
