module Growable = Pytfhe_util.Growable

type id = int

type kind =
  | Input of int
  | Const of bool
  | Gate of Gate.t * id * id
  | Lut of { table : int; ins : id array }

(* kind codes in the dense store *)
let k_input = -1
let k_const_false = -2
let k_const_true = -3

(* programmable LUT cells, by arity: code = -3 - arity *)
let k_lut1 = -4
let k_lut2 = -5
let k_lut3 = -6
let lut_code arity = -3 - arity
let lut_arity_of_code code = -3 - code

type t = {
  kinds : Growable.t;  (* gate code, or one of the negative markers *)
  in0 : Growable.t;  (* fan-in 0; input ordinal for inputs *)
  in1 : Growable.t;
  in2 : Growable.t;  (* third LUT operand; 0 elsewhere *)
  tbl : Growable.t;  (* LUT truth table; 0 elsewhere *)
  hash_consing : bool;
  fold_constants : bool;
  window : int;  (* CSE-table entry bound; 0 = unbounded *)
  cse : (int * int * int, id) Hashtbl.t;
  lut_cse : (int * int * int * int, id) Hashtbl.t;  (* (arity|table, a, b, c) *)
  lut_rots : (int * int * int * int, unit) Hashtbl.t;  (* rotation groups (arity, a, b, c) *)
  cse_q : (int * int * int) Queue.t;  (* insertion order, for FIFO eviction *)
  lut_cse_q : (int * int * int * int) Queue.t;
  lut_rots_q : (int * int * int * int) Queue.t;
  mutable cse_peak : int;
  mutable cse_evicted : int;
  mutable observer : (id -> unit) option;
  mutable const_false : id;
  mutable const_true : id;
  mutable input_names : string list;  (* reversed *)
  mutable n_inputs : int;
  mutable outs : (string * id) list;  (* reversed *)
  mutable n_gates : int;
  mutable n_bootstraps : int;
  mutable n_luts : int;
  mutable n_reencodes : int;
  mutable n_lut_groups : int;
}

let create ?(hash_consing = true) ?(fold_constants = true) ?(window = 0) () =
  if window < 0 then invalid_arg "Netlist.create: negative window";
  {
    kinds = Growable.create ~capacity:1024 ();
    in0 = Growable.create ~capacity:1024 ();
    in1 = Growable.create ~capacity:1024 ();
    in2 = Growable.create ~capacity:1024 ();
    tbl = Growable.create ~capacity:1024 ();
    hash_consing;
    fold_constants;
    window;
    cse = Hashtbl.create 1024;
    lut_cse = Hashtbl.create 64;
    lut_rots = Hashtbl.create 64;
    cse_q = Queue.create ();
    lut_cse_q = Queue.create ();
    lut_rots_q = Queue.create ();
    cse_peak = 0;
    cse_evicted = 0;
    observer = None;
    const_false = -1;
    const_true = -1;
    input_names = [];
    n_inputs = 0;
    outs = [];
    n_gates = 0;
    n_bootstraps = 0;
    n_luts = 0;
    n_reencodes = 0;
    n_lut_groups = 0;
  }

let set_observer t f = t.observer <- Some f
let cse_live t = Hashtbl.length t.cse + Hashtbl.length t.lut_cse + Hashtbl.length t.lut_rots
let cse_peak t = t.cse_peak
let cse_evicted t = t.cse_evicted

(* Bookkeeping after any hash-table insertion: enforce the FIFO window and
   track the high-water mark.  Keys are unique per table (insertion happens
   only on a miss), so one queue entry corresponds to one live binding. *)
let note_cse_add t =
  if t.window > 0 then begin
    if Queue.length t.cse_q > t.window then begin
      Hashtbl.remove t.cse (Queue.pop t.cse_q);
      t.cse_evicted <- t.cse_evicted + 1
    end;
    if Queue.length t.lut_cse_q > t.window then begin
      Hashtbl.remove t.lut_cse (Queue.pop t.lut_cse_q);
      t.cse_evicted <- t.cse_evicted + 1
    end;
    if Queue.length t.lut_rots_q > t.window then begin
      Hashtbl.remove t.lut_rots (Queue.pop t.lut_rots_q);
      t.cse_evicted <- t.cse_evicted + 1
    end
  end;
  let live = cse_live t in
  if live > t.cse_peak then t.cse_peak <- live

let node_count t = Growable.length t.kinds
let gate_count t = t.n_gates
let bootstrap_count t = t.n_bootstraps
let input_count t = t.n_inputs
let lut_count t = t.n_luts
let reencode_count t = t.n_reencodes
let lut_group_count t = t.n_lut_groups
let has_luts t = t.n_luts + t.n_reencodes > 0

let push_node t code a b =
  let id = node_count t in
  Growable.push t.kinds code;
  Growable.push t.in0 a;
  Growable.push t.in1 b;
  Growable.push t.in2 0;
  Growable.push t.tbl 0;
  (match t.observer with Some f -> f id | None -> ());
  id

let push_lut_node t code a b c table =
  let id = node_count t in
  Growable.push t.kinds code;
  Growable.push t.in0 a;
  Growable.push t.in1 b;
  Growable.push t.in2 c;
  Growable.push t.tbl table;
  (match t.observer with Some f -> f id | None -> ());
  id

let input t name =
  let ordinal = t.n_inputs in
  t.n_inputs <- ordinal + 1;
  t.input_names <- name :: t.input_names;
  push_node t k_input ordinal ordinal

let const t b =
  if b then begin
    if t.const_true < 0 then t.const_true <- push_node t k_const_true 0 0;
    t.const_true
  end
  else begin
    if t.const_false < 0 then t.const_false <- push_node t k_const_false 0 0;
    t.const_false
  end

let kind t id =
  if id < 0 || id >= node_count t then invalid_arg "Netlist.kind";
  match Growable.get t.kinds id with
  | c when c = k_input -> Input (Growable.get t.in0 id)
  | c when c = k_const_false -> Const false
  | c when c = k_const_true -> Const true
  | c when c = k_lut1 ->
    Lut { table = Growable.get t.tbl id; ins = [| Growable.get t.in0 id |] }
  | c when c = k_lut2 ->
    Lut { table = Growable.get t.tbl id; ins = [| Growable.get t.in0 id; Growable.get t.in1 id |] }
  | c when c = k_lut3 ->
    Lut
      {
        table = Growable.get t.tbl id;
        ins = [| Growable.get t.in0 id; Growable.get t.in1 id; Growable.get t.in2 id |];
      }
  | code -> (
    match Gate.of_code code with
    | Some g -> Gate (g, Growable.get t.in0 id, Growable.get t.in1 id)
    | None -> assert false)

let is_lut t id =
  let c = Growable.get t.kinds id in
  c = k_lut1 || c = k_lut2 || c = k_lut3

let const_value t id =
  match Growable.get t.kinds id with
  | c when c = k_const_false -> Some false
  | c when c = k_const_true -> Some true
  | _ -> None

let is_not t id = Growable.get t.kinds id = Gate.to_code Gate.Not

(* Partial evaluation of gate [g] when one side is the constant [c]: the
   result is constant, the wire itself, or its negation. *)
type partial = P_const of bool | P_wire | P_not

let partial_left g c =
  (* g (c, x) as a function of x *)
  let f0 = Gate.eval g c false and f1 = Gate.eval g c true in
  if f0 = f1 then P_const f0 else if f1 then P_wire else P_not

let partial_right g c =
  let f0 = Gate.eval g false c and f1 = Gate.eval g true c in
  if f0 = f1 then P_const f0 else if f1 then P_wire else P_not

let rec emit_gate t g a b =
  let code = Gate.to_code g in
  (* Canonicalise commutative fan-ins (and the NY/YN mirror pairs) so that
     structural hashing sees one representative. *)
  let g, code, a, b =
    if a > b then
      if Gate.is_commutative g then (g, code, b, a)
      else
        match Gate.swap g with
        | Some g' -> (g', Gate.to_code g', b, a)
        | None -> (g, code, a, b)
    else (g, code, a, b)
  in
  ignore g;
  if t.hash_consing then begin
    match Hashtbl.find_opt t.cse (code, a, b) with
    | Some id -> id
    | None ->
      let id = push_node t code a b in
      t.n_gates <- t.n_gates + 1;
      if code <> Gate.to_code Gate.Not then t.n_bootstraps <- t.n_bootstraps + 1;
      Hashtbl.add t.cse (code, a, b) id;
      if t.window > 0 then Queue.push (code, a, b) t.cse_q;
      note_cse_add t;
      id
  end
  else begin
    let id = push_node t code a b in
    t.n_gates <- t.n_gates + 1;
    if code <> Gate.to_code Gate.Not then t.n_bootstraps <- t.n_bootstraps + 1;
    id
  end

and build_not t a =
  if not t.fold_constants then emit_gate t Gate.Not a a
  else
    match const_value t a with
    | Some v -> const t (not v)
    | None ->
      if is_not t a then Growable.get t.in0 a  (* ¬¬x = x *)
      else emit_gate t Gate.Not a a

and gate t g a b =
  let n = node_count t in
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Netlist.gate: unknown fan-in";
  if Gate.is_unary g then build_not t a
  else if not t.fold_constants then emit_gate t g a b
  else
    match (const_value t a, const_value t b) with
    | Some ca, Some cb -> const t (Gate.eval g ca cb)
    | Some ca, None -> (
      match partial_left g ca with
      | P_const v -> const t v
      | P_wire -> b
      | P_not -> build_not t b)
    | None, Some cb -> (
      match partial_right g cb with
      | P_const v -> const t v
      | P_wire -> a
      | P_not -> build_not t a)
    | None, None ->
      if a = b then begin
        (* g (x, x) is constant, x, or ¬x. *)
        let f0 = Gate.eval g false false and f1 = Gate.eval g true true in
        if f0 = f1 then const t f0 else if f1 then a else build_not t a
      end
      else emit_gate t g a b

let not_ t a = gate t Gate.Not a a

let mux t s x y =
  let sx = gate t Gate.And s x in
  let nsy = gate t Gate.Andny s y in
  gate t Gate.Or sx nsy

(* ------------------------------------------------------------------ *)
(* Programmable LUT cells                                              *)
(* ------------------------------------------------------------------ *)

let emit_lut t ~table vars =
  let k = Array.length vars in
  let a = vars.(0) in
  let b = if k > 1 then vars.(1) else 0 in
  let c = if k > 2 then vars.(2) else 0 in
  let record () =
    let id = push_lut_node t (lut_code k) a b c table in
    if k = 1 then begin
      t.n_reencodes <- t.n_reencodes + 1;
      t.n_bootstraps <- t.n_bootstraps + 1
    end
    else begin
      t.n_luts <- t.n_luts + 1;
      (* multi-input cells with the same operand tuple share one blind
         rotation at execution time, so only the first of a group costs a
         bootstrap *)
      let key = (k, a, b, c) in
      if not (Hashtbl.mem t.lut_rots key) then begin
        Hashtbl.add t.lut_rots key ();
        if t.window > 0 then Queue.push key t.lut_rots_q;
        note_cse_add t;
        t.n_lut_groups <- t.n_lut_groups + 1;
        t.n_bootstraps <- t.n_bootstraps + 1
      end
    end;
    id
  in
  if t.hash_consing then begin
    let key = ((table lsl 2) lor k, a, b, c) in
    match Hashtbl.find_opt t.lut_cse key with
    | Some id -> id
    | None ->
      let id = record () in
      Hashtbl.add t.lut_cse key id;
      if t.window > 0 then Queue.push key t.lut_cse_q;
      note_cse_add t;
      id
  end
  else record ()

let lut t ~table ins =
  let arity = Array.length ins in
  if arity < 1 || arity > 3 then invalid_arg "Netlist.lut: arity must be 1, 2 or 3";
  let n = node_count t in
  Array.iter (fun a -> if a < 0 || a >= n then invalid_arg "Netlist.lut: unknown fan-in") ins;
  let tsize = 1 lsl (1 lsl arity) in
  if table < 0 || table >= tsize then invalid_arg "Netlist.lut: table out of range for arity";
  (* Canonical form: constant operands specialised away, duplicates merged,
     the survivors sorted ascending, and the table re-indexed to match.
     Constants are always folded — multi-input cells require lutdom
     operands, and a constant has no lutdom node. *)
  let vars =
    Array.to_list ins
    |> List.filter (fun i -> const_value t i = None)
    |> List.sort_uniq compare |> Array.of_list
  in
  let k = Array.length vars in
  let table' = ref 0 in
  for m = 0 to (1 lsl k) - 1 do
    let value_of id =
      match const_value t id with
      | Some v -> v
      | None ->
        let j = ref 0 in
        while vars.(!j) <> id do
          incr j
        done;
        (m lsr (k - 1 - !j)) land 1 = 1
    in
    let m_orig = Array.fold_left (fun acc id -> (acc * 2) + Bool.to_int (value_of id)) 0 ins in
    if (table lsr m_orig) land 1 = 1 then table' := !table' lor (1 lsl m)
  done;
  let table = !table' in
  if k = 0 then const t (table land 1 = 1)
  else if t.fold_constants && (table = 0 || table = (1 lsl (1 lsl k)) - 1) then
    (* the respecialised function is constant *)
    const t (table land 1 = 1)
  else if t.fold_constants && k = 1 && table = 0b10 && is_lut t vars.(0) then
    (* identity over an operand already in lutdom *)
    vars.(0)
  else begin
    if k >= 2 then
      Array.iter
        (fun id ->
          if not (is_lut t id) then
            invalid_arg "Netlist.lut: multi-input LUT operands must be LUT nodes")
        vars;
    emit_lut t ~table vars
  end

(* Replay every node of [template] into [t], substituting [args] for the
   template's primary inputs (by ordinal).  The replay goes through the
   ordinary [gate]/[lut] builders, so the destination's construction-time
   optimizations (folding against constant arguments, structural hashing,
   windowing) all apply.  Returns the template-id → destination-id map. *)
let instantiate t ~template ~args =
  if Array.length args <> template.n_inputs then
    invalid_arg "Netlist.instantiate: argument count does not match template inputs";
  let n = node_count t in
  Array.iter
    (fun a -> if a < 0 || a >= n then invalid_arg "Netlist.instantiate: unknown argument node")
    args;
  let tn = node_count template in
  let map = Array.make tn (-1) in
  for id = 0 to tn - 1 do
    let code = Growable.get template.kinds id in
    map.(id) <-
      (if code = k_input then args.(Growable.get template.in0 id)
       else if code = k_const_false then const t false
       else if code = k_const_true then const t true
       else if code <= k_lut1 then begin
         let arity = lut_arity_of_code code in
         let operand j =
           Growable.get (match j with 0 -> template.in0 | 1 -> template.in1 | _ -> template.in2) id
         in
         let ins = Array.init arity (fun j -> map.(operand j)) in
         lut t ~table:(Growable.get template.tbl id) ins
       end
       else
         match Gate.of_code code with
         | Some g -> gate t g map.(Growable.get template.in0 id) map.(Growable.get template.in1 id)
         | None -> assert false)
  done;
  map

let mark_output t name id =
  if id < 0 || id >= node_count t then invalid_arg "Netlist.mark_output: unknown node";
  t.outs <- (name, id) :: t.outs

let inputs t =
  let names = List.rev t.input_names in
  let rec collect i acc names =
    if i >= node_count t then List.rev acc
    else
      match (Growable.get t.kinds i, names) with
      | c, name :: rest when c = k_input -> collect (i + 1) ((name, i) :: acc) rest
      | c, [] when c = k_input -> assert false
      | _, _ -> collect (i + 1) acc names
  in
  collect 0 [] names

let outputs t = List.rev t.outs

let iter_gates t f =
  for id = 0 to node_count t - 1 do
    let code = Growable.get t.kinds id in
    if code > 0 then
      match Gate.of_code code with
      | Some g -> f id g (Growable.get t.in0 id) (Growable.get t.in1 id)
      | None -> assert false
  done

let eval t ins =
  if Array.length ins <> t.n_inputs then invalid_arg "Netlist.eval: input arity mismatch";
  let n = node_count t in
  let values = Array.make n false in
  for id = 0 to n - 1 do
    let code = Growable.get t.kinds id in
    if code = k_input then values.(id) <- ins.(Growable.get t.in0 id)
    else if code = k_const_false then values.(id) <- false
    else if code = k_const_true then values.(id) <- true
    else if code <= k_lut1 then begin
      let arity = lut_arity_of_code code in
      let operand j =
        Growable.get (match j with 0 -> t.in0 | 1 -> t.in1 | _ -> t.in2) id
      in
      let m = ref 0 in
      for j = 0 to arity - 1 do
        m := (!m * 2) + Bool.to_int values.(operand j)
      done;
      values.(id) <- (Growable.get t.tbl id lsr !m) land 1 = 1
    end
    else
      match Gate.of_code code with
      | Some g ->
        values.(id) <- Gate.eval g values.(Growable.get t.in0 id) values.(Growable.get t.in1 id)
      | None -> assert false
  done;
  values

let eval_outputs t ins =
  let values = eval t ins in
  List.map (fun (name, id) -> (name, values.(id))) (outputs t)
