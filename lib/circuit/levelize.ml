type schedule = {
  level : int array;
  depth : int;
  widths : int array;
  total_bootstraps : int;
}

let run net =
  let n = Netlist.node_count net in
  let level = Array.make n 0 in
  let depth = ref 0 in
  let counts = Pytfhe_util.Growable.create ~capacity:64 () in
  let bump l =
    while Pytfhe_util.Growable.length counts < l do
      Pytfhe_util.Growable.push counts 0
    done;
    Pytfhe_util.Growable.set counts (l - 1) (Pytfhe_util.Growable.get counts (l - 1) + 1)
  in
  let total = ref 0 in
  let place id base =
    let l = base + 1 in
    level.(id) <- l;
    if l > !depth then depth := l;
    bump l;
    incr total
  in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Input _ | Netlist.Const _ -> ()
    | Netlist.Gate (g, a, b) ->
      let la = level.(a) and lb = level.(b) in
      let base = if la > lb then la else lb in
      if Gate.is_unary g then level.(id) <- base else place id base
    | Netlist.Lut { ins; _ } ->
      (* every LUT cell occupies a bootstrap slot in its wave; rotation
         sharing between same-operand cells is the executors' business *)
      place id (Array.fold_left (fun acc a -> max acc level.(a)) 0 ins)
  done;
  { level; depth = !depth; widths = Pytfhe_util.Growable.to_array counts; total_bootstraps = !total }

(* Incremental levelizer: the same placement rule as [run], maintained node
   by node as construction proceeds, so a streaming compiler knows each
   node's level (and the evolving widths profile) without a final sweep. *)
module Inc = struct
  module Growable = Pytfhe_util.Growable

  type t = {
    net : Netlist.t;
    levels : Growable.t;  (* per node, 0 for inputs/constants *)
    counts : Growable.t;  (* counts.(l-1): bootstrapped nodes in wave l *)
    mutable depth : int;
    mutable total : int;
    mutable upto : int;  (* next id to consume *)
  }

  let create net =
    { net; levels = Growable.create ~capacity:1024 (); counts = Growable.create ~capacity:64 ();
      depth = 0; total = 0; upto = 0 }

  let bump t l =
    while Growable.length t.counts < l do
      Growable.push t.counts 0
    done;
    Growable.set t.counts (l - 1) (Growable.get t.counts (l - 1) + 1)

  let note t id =
    if id <> t.upto then invalid_arg "Levelize.Inc.note: ids must arrive in order";
    t.upto <- id + 1;
    let place base =
      let l = base + 1 in
      Growable.push t.levels l;
      if l > t.depth then t.depth <- l;
      bump t l;
      t.total <- t.total + 1
    in
    match Netlist.kind t.net id with
    | Netlist.Input _ | Netlist.Const _ -> Growable.push t.levels 0
    | Netlist.Gate (g, a, b) ->
      let la = Growable.get t.levels a and lb = Growable.get t.levels b in
      let base = if la > lb then la else lb in
      if Gate.is_unary g then Growable.push t.levels base else place base
    | Netlist.Lut { ins; _ } ->
      place (Array.fold_left (fun acc a -> max acc (Growable.get t.levels a)) 0 ins)

  let catch_up t =
    while t.upto < Netlist.node_count t.net do
      note t t.upto
    done

  let level t id = Growable.get t.levels id
  let depth t = t.depth
  let total_bootstraps t = t.total

  let schedule t =
    catch_up t;
    { level = Growable.to_array t.levels; depth = t.depth;
      widths = Growable.to_array t.counts; total_bootstraps = t.total }
end

type wave = { parallel : Netlist.id array; inline : Netlist.id array }

let waves s net =
  let nw = s.depth + 1 in
  let par_count = Array.make nw 0 in
  let inl_count = Array.make nw 0 in
  (* Not gates are inline (free); everything else bootstrapped — LUT cells
     included. *)
  let visit f =
    for id = 0 to Netlist.node_count net - 1 do
      match Netlist.kind net id with
      | Netlist.Input _ | Netlist.Const _ -> ()
      | Netlist.Gate (g, _, _) -> f id (Gate.is_unary g)
      | Netlist.Lut _ -> f id false
    done
  in
  visit (fun id inl ->
      let l = s.level.(id) in
      if inl then inl_count.(l) <- inl_count.(l) + 1 else par_count.(l) <- par_count.(l) + 1);
  let parallel = Array.init nw (fun w -> Array.make par_count.(w) 0) in
  let inline = Array.init nw (fun w -> Array.make inl_count.(w) 0) in
  let par_fill = Array.make nw 0 in
  let inl_fill = Array.make nw 0 in
  visit (fun id inl ->
      let l = s.level.(id) in
      if inl then begin
        inline.(l).(inl_fill.(l)) <- id;
        inl_fill.(l) <- inl_fill.(l) + 1
      end
      else begin
        parallel.(l).(par_fill.(l)) <- id;
        par_fill.(l) <- par_fill.(l) + 1
      end);
  Array.init nw (fun w -> { parallel = parallel.(w); inline = inline.(w) })

let max_width s = Array.fold_left max 0 s.widths

let average_width s =
  if s.depth = 0 then 0.0 else float_of_int s.total_bootstraps /. float_of_int s.depth

let serial_fraction s =
  if s.depth = 0 then 0.0
  else
    let serial = Array.fold_left (fun acc w -> if w <= 1 then acc + 1 else acc) 0 s.widths in
    float_of_int serial /. float_of_int s.depth
