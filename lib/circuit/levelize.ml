type schedule = {
  level : int array;
  depth : int;
  widths : int array;
  total_bootstraps : int;
}

let run net =
  let n = Netlist.node_count net in
  let level = Array.make n 0 in
  let depth = ref 0 in
  let counts = Pytfhe_util.Growable.create ~capacity:64 () in
  let bump l =
    while Pytfhe_util.Growable.length counts < l do
      Pytfhe_util.Growable.push counts 0
    done;
    Pytfhe_util.Growable.set counts (l - 1) (Pytfhe_util.Growable.get counts (l - 1) + 1)
  in
  let total = ref 0 in
  let place id base =
    let l = base + 1 in
    level.(id) <- l;
    if l > !depth then depth := l;
    bump l;
    incr total
  in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Input _ | Netlist.Const _ -> ()
    | Netlist.Gate (g, a, b) ->
      let la = level.(a) and lb = level.(b) in
      let base = if la > lb then la else lb in
      if Gate.is_unary g then level.(id) <- base else place id base
    | Netlist.Lut { ins; _ } ->
      (* every LUT cell occupies a bootstrap slot in its wave; rotation
         sharing between same-operand cells is the executors' business *)
      place id (Array.fold_left (fun acc a -> max acc level.(a)) 0 ins)
  done;
  { level; depth = !depth; widths = Pytfhe_util.Growable.to_array counts; total_bootstraps = !total }

type wave = { parallel : Netlist.id array; inline : Netlist.id array }

let waves s net =
  let nw = s.depth + 1 in
  let par_count = Array.make nw 0 in
  let inl_count = Array.make nw 0 in
  (* Not gates are inline (free); everything else bootstrapped — LUT cells
     included. *)
  let visit f =
    for id = 0 to Netlist.node_count net - 1 do
      match Netlist.kind net id with
      | Netlist.Input _ | Netlist.Const _ -> ()
      | Netlist.Gate (g, _, _) -> f id (Gate.is_unary g)
      | Netlist.Lut _ -> f id false
    done
  in
  visit (fun id inl ->
      let l = s.level.(id) in
      if inl then inl_count.(l) <- inl_count.(l) + 1 else par_count.(l) <- par_count.(l) + 1);
  let parallel = Array.init nw (fun w -> Array.make par_count.(w) 0) in
  let inline = Array.init nw (fun w -> Array.make inl_count.(w) 0) in
  let par_fill = Array.make nw 0 in
  let inl_fill = Array.make nw 0 in
  visit (fun id inl ->
      let l = s.level.(id) in
      if inl then begin
        inline.(l).(inl_fill.(l)) <- id;
        inl_fill.(l) <- inl_fill.(l) + 1
      end
      else begin
        parallel.(l).(par_fill.(l)) <- id;
        par_fill.(l) <- par_fill.(l) + 1
      end);
  Array.init nw (fun w -> { parallel = parallel.(w); inline = inline.(w) })

let max_width s = Array.fold_left max 0 s.widths

let average_width s =
  if s.depth = 0 then 0.0 else float_of_int s.total_bootstraps /. float_of_int s.depth

let serial_fraction s =
  if s.depth = 0 then 0.0
  else
    let serial = Array.fold_left (fun acc w -> if w <= 1 then acc + 1 else acc) 0 s.widths in
    float_of_int serial /. float_of_int s.depth
