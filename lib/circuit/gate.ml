type t = Nand | And | Or | Nor | Xnor | Xor | Not | Andny | Andyn | Orny | Oryn

let all = [ Nand; And; Or; Nor; Xnor; Xor; Not; Andny; Andyn; Orny; Oryn ]

let name = function
  | Nand -> "nand"
  | And -> "and"
  | Or -> "or"
  | Nor -> "nor"
  | Xnor -> "xnor"
  | Xor -> "xor"
  | Not -> "not"
  | Andny -> "andny"
  | Andyn -> "andyn"
  | Orny -> "orny"
  | Oryn -> "oryn"

let to_code = function
  | Nand -> 1
  | And -> 2
  | Or -> 3
  | Nor -> 4
  | Xnor -> 5
  | Xor -> 6
  | Not -> 7
  | Andny -> 8
  | Andyn -> 9
  | Orny -> 10
  | Oryn -> 11

let of_code = function
  | 1 -> Some Nand
  | 2 -> Some And
  | 3 -> Some Or
  | 4 -> Some Nor
  | 5 -> Some Xnor
  | 6 -> Some Xor
  | 7 -> Some Not
  | 8 -> Some Andny
  | 9 -> Some Andyn
  | 10 -> Some Orny
  | 11 -> Some Oryn
  | _ -> None

let eval g a b =
  match g with
  | Nand -> not (a && b)
  | And -> a && b
  | Or -> a || b
  | Nor -> not (a || b)
  | Xnor -> a = b
  | Xor -> a <> b
  | Not -> not a
  | Andny -> (not a) && b
  | Andyn -> a && not b
  | Orny -> (not a) || b
  | Oryn -> a || not b

let is_unary = function Not -> true | _ -> false

let is_commutative = function
  | Nand | And | Or | Nor | Xnor | Xor -> true
  | Not | Andny | Andyn | Orny | Oryn -> false

let swap = function
  | Nand -> Some Nand
  | And -> Some And
  | Or -> Some Or
  | Nor -> Some Nor
  | Xnor -> Some Xnor
  | Xor -> Some Xor
  | Not -> None
  | Andny -> Some Andyn
  | Andyn -> Some Andny
  | Orny -> Some Oryn
  | Oryn -> Some Orny

let table_of = function
  | Not -> None
  | g ->
    (* bit m = 2a + b of the table is g(a,b): the MSB-first convention of
       the LUT cells *)
    let bit a b = Bool.to_int (eval g a b) in
    Some
      ((bit true true lsl 3) lor (bit true false lsl 2) lor (bit false true lsl 1)
      lor bit false false)

let of_table tbl =
  List.find_opt (fun g -> table_of g = Some tbl) all

let pp fmt g = Format.pp_print_string fmt (name g)
