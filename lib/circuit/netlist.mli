(** The gate-level intermediate representation: a DAG of TFHE gates.

    Nodes are dense integer ids in construction order, so every gate's
    fan-ins have smaller ids than the gate itself — the topological order is
    free.  The store is a struct-of-arrays over unboxed int vectors and
    scales to multi-million-gate neural networks.

    The builder can optionally perform the two construction-time
    optimizations ChiselTorch relies on: constant folding (including
    same-input and double-negation simplification) and structural hashing.
    Baseline framework models disable them to reproduce their gate
    inflation. *)

type t
type id = int

type kind =
  | Input of int  (** Ordinal among the circuit's inputs. *)
  | Const of bool  (** A public constant. *)
  | Gate of Gate.t * id * id  (** [Not] stores its fan-in twice. *)
  | Lut of { table : int; ins : id array }
      (** Programmable LUT cell of arity 1–3.  Bit [m] of [table] is the
          output for the operand assignment [m] read MSB-first
          ([ins.(0)] is the message MSB).  Arity-1 cells take a classic
          operand (a reencode when [table = 0b10]); multi-input cells
          take lutdom operands, i.e. other [Lut] nodes. *)

val create : ?hash_consing:bool -> ?fold_constants:bool -> ?window:int -> unit -> t
(** Fresh empty netlist; both optimizations default to [true].  A positive
    [window] bounds each of the structural-hashing tables (gate CSE, LUT CSE
    and rotation groups) to at most [window] entries, evicting the oldest
    binding FIFO-style once the bound is exceeded — the streaming compiler's
    memory-bounding policy.  Eviction is conservative: a re-emitted
    sub-expression whose table entry was evicted is rebuilt (and a rotation
    group whose key was evicted is re-counted), never mis-shared, so the
    circuit function is unaffected.  [window = 0] (the default) keeps the
    tables unbounded. *)

val set_observer : t -> (id -> unit) -> unit
(** Install a callback fired once for every newly allocated node (inputs and
    constants included), immediately after it lands in the dense store.  The
    streaming assembler uses this to emit instructions as construction
    proceeds.  Replaces any previous observer. *)

val cse_live : t -> int
(** Current total entries across the three structural-hashing tables. *)

val cse_peak : t -> int
(** High-water mark of {!cse_live} — the quantity the window bounds. *)

val cse_evicted : t -> int
(** Entries evicted so far under a positive window. *)

val instantiate : t -> template:t -> args:id array -> id array
(** [instantiate t ~template ~args] replays every node of [template] into
    [t], substituting [args.(i)] for the template's [i]-th primary input.
    The replay goes through the ordinary {!gate}/{!lut} builders, so the
    destination's construction-time optimizations apply (a constant
    argument folds through the whole instance).  Returns the
    template-id → destination-id map, so callers translate template output
    buses with one array lookup per wire.  Raises [Invalid_argument] when
    [args] does not match the template's input count or names an unknown
    node. *)

val input : t -> string -> id
(** Declare a primary input. *)

val const : t -> bool -> id
(** The constant node for [true] or [false] (shared per netlist). *)

val gate : t -> Gate.t -> id -> id -> id
(** Add a gate over two existing nodes (subject to the enabled
    construction-time optimizations). *)

val not_ : t -> id -> id
(** Convenience for [gate t Not a a]. *)

val mux : t -> id -> id -> id -> id
(** [mux t s x y] = if s then x else y, lowered onto the 11-gate cell
    library as OR(AND(s,x), ANDNY(s,y)). *)

val lut : t -> table:int -> id array -> id
(** Add a programmable LUT cell over 1–3 existing nodes.  The node is
    canonicalised before insertion: constant operands are always folded
    into the table (multi-input cells require lutdom operands, which
    constants cannot be), duplicate operands merged, and the survivors
    sorted ascending with the table re-indexed to match — so cells that
    compute over the same operand set share one operand tuple and hence
    one blind rotation at execution time.  Under [fold_constants],
    constant tables collapse to {!const} and the lutdom identity
    ([table = 0b10] over a [Lut] operand) returns the operand.  Raises
    [Invalid_argument] on arity ∉ 1–3, a table wider than 2^2^arity, an
    unknown fan-in, or a non-[Lut] operand of a multi-input cell. *)

val mark_output : t -> string -> id -> unit
(** Register a named primary output. *)

val node_count : t -> int
(** Total nodes including inputs and constants. *)

val gate_count : t -> int
(** Gates only (the quantity every PyTFHE experiment reports). *)

val bootstrap_count : t -> int
(** Blind rotations an execution performs: every gate but [Not], every
    arity-1 LUT cell, and one per {e rotation group} — multi-input LUT
    cells sharing an operand tuple share one rotation. *)

val input_count : t -> int

val lut_count : t -> int
(** Multi-input (arity ≥ 2) LUT cells. *)

val reencode_count : t -> int
(** Arity-1 LUT cells (classic → lutdom conversions and sign cells). *)

val lut_group_count : t -> int
(** Distinct rotation groups among the multi-input LUT cells. *)

val has_luts : t -> bool
(** Whether any LUT cell is present (backends without LUT support use
    this to refuse early). *)

val is_lut : t -> id -> bool
(** Whether a node is a LUT cell (its value is lutdom-encoded). *)

val kind : t -> id -> kind
(** Classify a node. Raises [Invalid_argument] on an unknown id. *)

val inputs : t -> (string * id) list
(** Primary inputs in declaration order. *)

val outputs : t -> (string * id) list
(** Primary outputs in declaration order. *)

val iter_gates : t -> (id -> Gate.t -> id -> id -> unit) -> unit
(** Visit every gate in topological (id) order. *)

val eval : t -> bool array -> bool array
(** [eval t ins] evaluates the whole DAG on plaintext bits ([ins] in input
    declaration order) and returns the value of every node. *)

val eval_outputs : t -> bool array -> (string * bool) list
(** Like {!eval} but projected onto the primary outputs. *)
