(** The PyTFHE binary format (paper Fig. 5/6).

    Every instruction is 128 bits, stored as two little-endian 64-bit words
    (low word first).  Bit layout over the 128-bit value: bits 127–66 hold
    field A (62 bits), bits 65–4 field B (62 bits), bits 3–0 the type tag.

    - {b header} (first instruction): A = 0, B = total gate count, tag 0x0.
    - {b input}: A = all-ones, B = the reserved index, tag 0xF.
    - {b gate}: A = fan-in 0 index, B = fan-in 1 index, tag = gate code
      (1–11; XOR = 0110 as in the paper).
    - {b output}: A = all-ones, B = producing index, tag 0x3 — distinguished
      from an OR gate by the all-ones A field, which can never be a valid
      fan-in index.
    - {b lut}: tag 0xC.  A = first operand index; B packs the arity in
      bits 0–1, the truth table in bits 2–9, and the second and third
      operand indices in bits 10–35 and 36–61 (26 bits each; unused
      operand fields must be zero).  Decoding validates the record — an
      arity of 0, a table wider than 2^2^arity, or nonzero reserved bits
      raise [Pytfhe_util.Wire.Corrupt].

    Indices are assigned sequentially from 1 (inputs first, then gates), the
    "naming" scheme that makes DAG traversal a linear scan. *)

type instruction =
  | Header of { gate_total : int }
  | Input_decl of { index : int }
  | Gate_inst of { gate : Gate.t; in0 : int; in1 : int }
  | Lut_inst of { table : int; ins : int array }
  | Output_decl of { index : int }

val assemble : Netlist.t -> bytes
(** Serialize a netlist.  Constant nodes are materialised from the first
    input (XOR(i,i) / XNOR(i,i)); raises [Failure] if the netlist has live
    constants but no inputs. *)

val streamed_gate_total : int
(** Header sentinel (all-ones) carried by streamed binaries whose producer
    could not know the final gate count; executors treat it as "unknown"
    and skip the gate-budget check. *)

val patch_header : bytes -> int -> unit
(** Overwrite the header's gate count in place — how buffered streaming
    producers turn a sentinel header into an exact one. *)

(** Streaming assembler: emits the instruction stream node by node in
    netlist id order, flushing chunks to a sink, so the binary never has to
    be resident in full.  For input-first netlists the output is
    byte-identical to {!assemble} (modulo the header, which starts as
    {!streamed_gate_total} — backpatch via {!patch_header} when the sink is
    seekable). *)
module Emit : sig
  type t

  val create : ?chunk:int -> write:(bytes -> unit) -> Netlist.t -> t
  (** Emits the (sentinel) header immediately.  [write] receives chunks of
      roughly [chunk] bytes (default 64 KiB). *)

  val note : t -> Netlist.id -> unit
  (** Emit the instruction for one node.  Must be called in ascending id
      order over every node of the netlist; {!attach} does this
      automatically for nodes created after it.  Nodes preceding the first
      input are deferred and flushed once an input exists. *)

  val attach : t -> unit
  (** Install {!note} as the netlist's observer, so every node constructed
      from now on is emitted as a side effect of construction. *)

  val finish : t -> int
  (** Emit the output declarations, flush, and return the true gate total
      (for {!patch_header}).  Raises [Failure] like {!assemble} when live
      constants have no input to derive from. *)

  val bytes_emitted : t -> int
  val gate_total : t -> int
end

val disassemble : bytes -> instruction list
(** Decode an instruction stream.  Raises [Failure] on malformed input
    (bad length, missing header, unknown tag, index out of range). *)

val parse : bytes -> Netlist.t
(** Rebuild a netlist (with construction-time optimizations disabled, so
    the program round-trips bit-for-bit).  Raises [Pytfhe_util.Wire.Corrupt]
    on structurally invalid LUT records (e.g. a multi-input LUT whose
    operand is not a LUT node). *)

val instruction_count : bytes -> int
(** Number of 128-bit instructions. *)

val pp_instruction : Format.formatter -> instruction -> unit

val write_file : string -> bytes -> unit
val read_file : string -> bytes

val iter : bytes -> (instruction -> unit) -> unit
(** Streaming decode: apply the callback to each instruction in order
    without materialising a list (used by the streaming executor on
    multi-million-gate programs). *)

val iter_source : (unit -> bytes option) -> (instruction -> unit) -> unit
(** Like {!iter} over a pull source: [read ()] returns the next chunk of
    the stream (arbitrary framing — instructions may straddle chunks) or
    [None] at end of stream.  Raises [Failure] on a truncated trailing
    instruction or an empty stream. *)

val parse_source : (unit -> bytes option) -> Netlist.t
(** Like {!parse} over a pull source — the netlist is rebuilt
    incrementally, so only the dense netlist store (not the binary) is ever
    resident. *)

val read_source : ?chunk:int -> in_channel -> unit -> bytes option
(** A pull source over an open channel, reading [chunk]-byte blocks
    (default 64 KiB) — plug into {!iter_source}/{!parse_source}. *)
