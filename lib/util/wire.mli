(** Minimal binary serialization: length-prefixed, little-endian, with
    per-structure magic tags.  Every persistent artifact of the framework
    (keys, ciphertexts, programs) goes through this module so formats stay
    consistent and versioned. *)

type writer = Buffer.t

type reader
(** A cursor over an immutable byte string. *)

exception Corrupt of string
(** Raised by any read that fails validation. *)

val reader_of_string : string -> reader
val reader_of_bytes : bytes -> reader

val remaining : reader -> int
(** Bytes left to read. *)

val write_magic : writer -> string -> unit
(** Emit a 4-byte structure tag. *)

val read_magic : reader -> string -> unit
(** Consume and check a tag; raises {!Corrupt} on mismatch. *)

val write_u8 : writer -> int -> unit
val read_u8 : reader -> int

val write_i64 : writer -> int -> unit
(** Full OCaml int as a little-endian 64-bit value. *)

val read_i64 : reader -> int

val write_u32 : writer -> int -> unit
(** Lower 32 bits only — the torus element representation. *)

val read_u32 : reader -> int

val write_f64 : writer -> float -> unit
val read_f64 : reader -> float

val write_bool : writer -> bool -> unit
val read_bool : reader -> bool

val write_string : writer -> string -> unit
val read_string : reader -> string

val write_u32_array : writer -> int array -> unit
(** Length-prefixed array of 32-bit values (torus polynomials, LWE masks,
    binary key bits). *)

val read_u32_array : reader -> int array

val write_f64_array : writer -> float array -> unit
val read_f64_array : reader -> float array

val write_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val read_array : reader -> (reader -> 'a) -> 'a array

type i32_buffer = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The flat storage of the struct-of-arrays ciphertext containers. *)

val write_i32_bigarray : writer -> i32_buffer -> unit
(** Length-prefixed flat block of little-endian 32-bit words — the bulk
    payload of array ciphertext frames.  One staging copy, no per-element
    framing. *)

val read_i32_bigarray_into : reader -> i32_buffer -> unit
(** Fill the destination buffer from a block written by
    {!write_i32_bigarray}.  Raises {!Corrupt} when the stored element count
    does not equal the destination size or the payload is truncated; the
    bounds are checked once for the whole block. *)

val to_file : string -> writer -> unit
(** Write the buffer to a file atomically enough for this tool (temp name +
    rename). *)

val of_file : string -> reader
