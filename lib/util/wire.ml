type writer = Buffer.t

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let reader_of_string data = { data; pos = 0 }
let reader_of_bytes b = reader_of_string (Bytes.to_string b)

let remaining r = String.length r.data - r.pos

let need r n = if remaining r < n then corrupt "truncated input (need %d bytes at %d)" n r.pos

let write_u8 buf v = Buffer.add_uint8 buf (v land 0xFF)

let read_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let write_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let read_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let write_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let read_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let write_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let read_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let write_bool buf b = write_u8 buf (Bool.to_int b)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "invalid boolean byte %d" v

let write_magic buf tag =
  if String.length tag <> 4 then invalid_arg "Wire.write_magic: tag must be 4 bytes";
  Buffer.add_string buf tag

let read_magic r tag =
  need r 4;
  let got = String.sub r.data r.pos 4 in
  r.pos <- r.pos + 4;
  if got <> tag then corrupt "bad magic: expected %S, got %S" tag got

let write_length buf n =
  if n < 0 then invalid_arg "Wire: negative length";
  write_i64 buf n

let read_length r =
  let n = read_i64 r in
  if n < 0 || n > remaining r then corrupt "implausible length %d" n;
  n

let write_string buf s =
  write_length buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let n = read_length r in
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let write_u32_array buf a =
  write_length buf (Array.length a);
  Array.iter (write_u32 buf) a

let read_u32_array r =
  let n = read_length r in
  Array.init n (fun _ -> read_u32 r)

let write_f64_array buf a =
  write_length buf (Array.length a);
  Array.iter (write_f64 buf) a

let read_f64_array r =
  let n = read_length r in
  Array.init n (fun _ -> read_f64 r)

type i32_buffer = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Flat little-endian i32 blocks, the payload of the struct-of-arrays
   ciphertext frames: one length header (element count), then n raw 4-byte
   words.  Writing stages through one Bytes chunk so Buffer growth is
   amortized; reading does a single bounds check up front instead of one
   per element. *)
let write_i32_bigarray buf (ba : i32_buffer) =
  let n = Bigarray.Array1.dim ba in
  write_length buf n;
  let chunk = Bytes.create (4 * n) in
  for i = 0 to n - 1 do
    Bytes.set_int32_le chunk (4 * i) (Bigarray.Array1.unsafe_get ba i)
  done;
  Buffer.add_bytes buf chunk

let read_i32_bigarray_into r (ba : i32_buffer) =
  let n = read_length r in
  if n <> Bigarray.Array1.dim ba then
    corrupt "i32 block length %d does not match destination %d" n (Bigarray.Array1.dim ba);
  need r (4 * n);
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set ba i (String.get_int32_le r.data (r.pos + (4 * i)))
  done;
  r.pos <- r.pos + (4 * n)

let write_array buf f a =
  write_length buf (Array.length a);
  Array.iter (f buf) a

let read_array r f =
  let n = read_length r in
  Array.init n (fun _ -> f r)

let to_file path buf =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp path

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      reader_of_string (really_input_string ic len))
