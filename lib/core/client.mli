(** The client side of the protocol (paper Fig. 1): key generation,
    encryption of typed values into bit-level ciphertexts, decryption of
    results.  The secret keyset never leaves this module's values; the
    server only ever sees the cloud keyset and ciphertexts. *)

open Pytfhe_tfhe

type t
(** Client state: secret keys plus the encryption randomness stream. *)

val keygen : ?params:Params.t -> ?seed:int -> unit -> t * Gates.cloud_keyset
(** Generate the client keys and the evaluation keyset to ship to the
    server.  Defaults to {!Params.default_128}. *)

val params : t -> Params.t

val encrypt_bit : t -> bool -> Lwe.sample
val decrypt_bit : t -> Lwe.sample -> bool

val encrypt_bits : t -> bool array -> Lwe.sample array
val decrypt_bits : t -> Lwe.sample array -> bool array

val encrypt_value : t -> Pytfhe_chiseltorch.Dtype.t -> float -> Lwe.sample array
(** Quantize a number with the dtype and encrypt its bits (LSB first) —
    matching the wire order of a ChiselTorch tensor element. *)

val decrypt_value : t -> Pytfhe_chiseltorch.Dtype.t -> Lwe.sample array -> float

val client_id : t -> string
(** A stable 16-hex-char tenant identity derived from (but not revealing)
    the secret keyset — the default [client_id] the CLI registers keysets
    under with the FHE-as-a-service server.  Deterministic across
    {!save}/{!load} round-trips.  It is an {e identifier}, not an
    authenticator: the service trusts ids as namespace labels only. *)

val cloud_key_bytes : t -> int
(** Serialized size of the public evaluation keys (bootstrapping plus key
    switching) — the "few megabytes" the paper contrasts with CKKS rotation
    keys. *)

val save : t -> string -> unit
(** Persist the secret keyset (keep it on the client!). *)

val load : string -> t
(** Raises [Pytfhe_util.Wire.Corrupt] on malformed input. *)
