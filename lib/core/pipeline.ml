module Netlist = Pytfhe_circuit.Netlist
module Stats = Pytfhe_circuit.Stats
module Levelize = Pytfhe_circuit.Levelize
module Binary = Pytfhe_circuit.Binary
module Opt = Pytfhe_synth.Opt
module Trace = Pytfhe_obs.Trace
open Pytfhe_chiseltorch

type compiled = {
  prog_name : string;
  netlist : Netlist.t;
  binary : bytes;
  stats : Stats.t;
  schedule : Levelize.schedule;
  opt_report : Opt.report option;
}

let compile ?(obs = Trace.null) ?(optimize = true) ?(lut_cover = false) ~name net =
  (* One span per compile phase on a "compile" track; phases run strictly
     sequentially, so the track's spans can never overlap. *)
  let tr = Trace.new_track obs ~name:"compile" in
  let phase pname f =
    if not (Trace.enabled obs) then f ()
    else begin
      let t0 = Trace.now obs in
      let result = f () in
      Trace.span tr ~cat:"compile" ~name:pname ~t0 ~t1:(Trace.now obs);
      result
    end
  in
  let netlist, opt_report =
    if lut_cover then
      (* The covering pass subsumes optimize: it rebuilds (fold, CSE,
         inverter absorption, DCE) before and after covering. *)
      let covered, report = phase "lut-cover" (fun () -> Opt.lut_cover net) in
      (covered, Some report)
    else if optimize then
      let optimized, report = phase "optimize" (fun () -> Opt.optimize net) in
      (optimized, Some report)
    else (net, None)
  in
  let binary = phase "assemble" (fun () -> Binary.assemble netlist) in
  let stats = phase "stats" (fun () -> Stats.compute netlist) in
  let schedule = phase "levelize" (fun () -> Levelize.run netlist) in
  Trace.drain obs;
  { prog_name = name; netlist; binary; stats; schedule; opt_report }

let of_binary ~name binary =
  let netlist = Binary.parse binary in
  {
    prog_name = name;
    netlist;
    binary;
    stats = Stats.compute netlist;
    schedule = Levelize.run netlist;
    opt_report = None;
  }

let compile_model ~name ~dtype ~input_shape model =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dtype input_shape in
  Tensor.output net "y" (Nn.run net model x);
  compile ~name net

let compile_workload (w : Pytfhe_vipbench.Workload.t) =
  compile ~name:w.Pytfhe_vipbench.Workload.name (w.Pytfhe_vipbench.Workload.circuit ())

let pp_summary fmt c =
  Format.fprintf fmt "%s: %d gates (%d bootstrapped), depth %d, %d instructions (%d bytes)@."
    c.prog_name c.stats.Stats.gates c.stats.Stats.bootstraps c.stats.Stats.depth
    (Bytes.length c.binary / 16) (Bytes.length c.binary);
  (match c.opt_report with
  | Some r -> Format.fprintf fmt "  synthesis: %a@." Opt.pp_report r
  | None -> ());
  Format.fprintf fmt "  schedule: %d waves, max width %d, avg width %.1f@." c.schedule.Levelize.depth
    (Levelize.max_width c.schedule)
    (Levelize.average_width c.schedule)

let failure_probability c params =
  let p_gate = Pytfhe_tfhe.Noise.gate_failure_probability params in
  let n = float_of_int c.stats.Stats.bootstraps in
  (* 1 - (1-p)^n, computed stably for tiny p. *)
  -.Float.expm1 (n *. Float.log1p (-.p_gate))

let check_correctness c params =
  let p = failure_probability c params in
  if p <= 2.0 ** -20.0 then `Ok p else `Risky p
