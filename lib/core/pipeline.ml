module Netlist = Pytfhe_circuit.Netlist
module Stats = Pytfhe_circuit.Stats
module Levelize = Pytfhe_circuit.Levelize
module Binary = Pytfhe_circuit.Binary
module Opt = Pytfhe_synth.Opt
module Trace = Pytfhe_obs.Trace
open Pytfhe_chiseltorch

type compiled = {
  prog_name : string;
  netlist : Netlist.t;
  binary : bytes;
  stats : Stats.t;
  schedule : Levelize.schedule;
  opt_report : Opt.report option;
}

let compile ?(obs = Trace.null) ?(optimize = true) ?(lut_cover = false) ~name net =
  (* One span per compile phase on a "compile" track; phases run strictly
     sequentially, so the track's spans can never overlap. *)
  let tr = Trace.new_track obs ~name:"compile" in
  let phase pname f =
    if not (Trace.enabled obs) then f ()
    else begin
      let t0 = Trace.now obs in
      let result = f () in
      Trace.span tr ~cat:"compile" ~name:pname ~t0 ~t1:(Trace.now obs);
      result
    end
  in
  let netlist, opt_report =
    if lut_cover then
      (* The covering pass subsumes optimize: it rebuilds (fold, CSE,
         inverter absorption, DCE) before and after covering. *)
      let covered, report = phase "lut-cover" (fun () -> Opt.lut_cover net) in
      (covered, Some report)
    else if optimize then
      let optimized, report = phase "optimize" (fun () -> Opt.optimize net) in
      (optimized, Some report)
    else (net, None)
  in
  let binary = phase "assemble" (fun () -> Binary.assemble netlist) in
  let stats = phase "stats" (fun () -> Stats.compute netlist) in
  let schedule = phase "levelize" (fun () -> Levelize.run netlist) in
  Trace.drain obs;
  { prog_name = name; netlist; binary; stats; schedule; opt_report }

let of_binary ?max_bytes ~name binary =
  (* Admission control happens on the raw length, before a single
     instruction is decoded — an oversized submission must not cost the
     service a parse. *)
  (match max_bytes with
  | Some cap when Bytes.length binary > cap ->
    raise
      (Pytfhe_util.Wire.Corrupt
         (Printf.sprintf "Pipeline.of_binary: program is %d bytes, over the %d-byte admission cap"
            (Bytes.length binary) cap))
  | _ -> ());
  let netlist = Binary.parse binary in
  {
    prog_name = name;
    netlist;
    binary;
    stats = Stats.compute netlist;
    schedule = Levelize.run netlist;
    opt_report = None;
  }

let of_binary_source ~name read =
  let netlist = Binary.parse_source read in
  (* The source is gone once pulled; re-assemble the canonical binary from
     the parsed netlist (byte-identical to the submitted stream modulo the
     header sentinel, which re-assembly resolves to the exact count). *)
  let binary = Binary.assemble netlist in
  {
    prog_name = name;
    netlist;
    binary;
    stats = Stats.compute netlist;
    schedule = Levelize.run netlist;
    opt_report = None;
  }

(* ------------------------------------------------------------------ *)
(* Streaming compilation                                               *)
(* ------------------------------------------------------------------ *)

type stream_report = {
  gates : int;
  bootstraps : int;
  depth : int;
  max_width : int;
  node_count : int;
  bytes_emitted : int;
  cse_peak : int;
  cse_evicted : int;
  stream_schedule : Levelize.schedule;
}

let compile_stream ?(obs = Trace.null) ?hash_consing ?fold_constants ?window ?chunk ~name ~sink
    builder =
  let tr = Trace.new_track obs ~name:"compile" in
  let t0 = Trace.now obs in
  let net = Netlist.create ?hash_consing ?fold_constants ?window () in
  let emit = Binary.Emit.create ?chunk ~write:sink net in
  let inc = Levelize.Inc.create net in
  (* One observer drives both incremental passes: the moment a node lands
     in the store it is levelized and its instruction emitted, so neither
     pass ever re-walks the DAG and the binary is never resident. *)
  Netlist.set_observer net (fun id ->
      Binary.Emit.note emit id;
      Levelize.Inc.note inc id);
  builder net;
  let gates = Binary.Emit.finish emit in
  let stream_schedule = Levelize.Inc.schedule inc in
  if Trace.enabled obs then begin
    Trace.span tr ~cat:"compile" ~name:(name ^ ":stream") ~t0 ~t1:(Trace.now obs);
    Trace.drain obs
  end;
  {
    gates;
    bootstraps = stream_schedule.Levelize.total_bootstraps;
    depth = stream_schedule.Levelize.depth;
    max_width = Levelize.max_width stream_schedule;
    node_count = Netlist.node_count net;
    bytes_emitted = Binary.Emit.bytes_emitted emit;
    cse_peak = Netlist.cse_peak net;
    cse_evicted = Netlist.cse_evicted net;
    stream_schedule;
  }

let compile_stream_to_bytes ?obs ?hash_consing ?fold_constants ?window ?chunk ~name builder =
  let buf = Buffer.create 4096 in
  let report =
    compile_stream ?obs ?hash_consing ?fold_constants ?window ?chunk ~name
      ~sink:(Buffer.add_bytes buf) builder
  in
  let bytes = Buffer.to_bytes buf in
  Binary.patch_header bytes report.gates;
  (bytes, report)

let compile_stream_to_file ?obs ?hash_consing ?fold_constants ?window ?chunk ~name ~path builder =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let report =
        compile_stream ?obs ?hash_consing ?fold_constants ?window ?chunk ~name
          ~sink:(output_bytes oc) builder
      in
      (* The sink is seekable: rewrite the sentinel header with the exact
         gate total, so the file round-trips through [of_binary] with a
         working gate-budget check. *)
      let hdr = Bytes.make 16 '\000' in
      Binary.patch_header hdr report.gates;
      seek_out oc 0;
      output_bytes oc hdr;
      report)

let compile_model ~name ~dtype ~input_shape model =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dtype input_shape in
  Tensor.output net "y" (Nn.run net model x);
  compile ~name net

let compile_workload (w : Pytfhe_vipbench.Workload.t) =
  compile ~name:w.Pytfhe_vipbench.Workload.name (w.Pytfhe_vipbench.Workload.circuit ())

let pp_summary fmt c =
  Format.fprintf fmt "%s: %d gates (%d bootstrapped), depth %d, %d instructions (%d bytes)@."
    c.prog_name c.stats.Stats.gates c.stats.Stats.bootstraps c.stats.Stats.depth
    (Bytes.length c.binary / 16) (Bytes.length c.binary);
  (match c.opt_report with
  | Some r -> Format.fprintf fmt "  synthesis: %a@." Opt.pp_report r
  | None -> ());
  Format.fprintf fmt "  schedule: %d waves, max width %d, avg width %.1f@." c.schedule.Levelize.depth
    (Levelize.max_width c.schedule)
    (Levelize.average_width c.schedule)

let failure_probability c params =
  let p_gate = Pytfhe_tfhe.Noise.gate_failure_probability params in
  let n = float_of_int c.stats.Stats.bootstraps in
  (* 1 - (1-p)^n, computed stably for tiny p. *)
  -.Float.expm1 (n *. Float.log1p (-.p_gate))

let check_correctness c params =
  let p = failure_probability c params in
  if p <= 2.0 ** -20.0 then `Ok p else `Risky p
