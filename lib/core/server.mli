(** The server side: execute compiled TFHE programs on ciphertexts.

    Two orthogonal choices live here and are kept apart in the API:

    - {!exec_backend} selects a {e real} executor — every gate is a
      genuine bootstrapping over LWE ciphertexts — run through {!run},
      which all backends implement behind one
      {!Pytfhe_backend.Executor.S} signature;
    - {!sim_platform} selects a {e priced} platform — {!estimate} replays
      the schedule against the calibrated cost models of the paper's
      cluster and GPUs (see DESIGN.md for the substitution rationale)
      without executing anything. *)

(** {2 Real execution} *)

(** Which executor runs the program.  All three are bit-exact with each
    other for any worker count. *)
type exec_backend =
  | Cpu  (** Sequential {!Pytfhe_backend.Tfhe_eval} on the calling thread. *)
  | Multicore of { workers : int }
      (** {!Pytfhe_backend.Par_eval} on OCaml 5 domains; [workers = 0]
          means [Domain.recommended_domain_count ()]. *)
  | Multiprocess of {
      workers : int;
      config : Pytfhe_backend.Dist_eval.config option;
    }
      (** {!Pytfhe_backend.Dist_eval} on worker OS processes; [config]
          overrides [workers] when given.  The calling executable must
          invoke {!Pytfhe_backend.Dist_eval.worker_entry} at the start of
          main. *)

val exec_backend_name : exec_backend -> string
(** The backend's canonical spelling — ["cpu"], ["par"], ["par:4"],
    ["dist:2"] — chosen to round-trip through {!exec_backend_of_name} and
    to match the CLI's [--backend] argument and the bench artifacts.
    (An explicit [Multiprocess config] renders as [dist:N]; the rest of
    the config has no spelling.) *)

val exec_backend_of_name : string -> (exec_backend, string) result
(** Parse a backend spelling: [cpu], [par], [par:N], [dist], [dist:N]
    (bare [dist] means 2 workers).  [Error] carries a human-readable
    message listing the accepted forms. *)

val executor : exec_backend -> (module Pytfhe_backend.Executor.S)
(** The first-class executor module behind each variant. *)

val run :
  ?opts:Pytfhe_backend.Executor.opts ->
  exec_backend ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pipeline.compiled ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * Pytfhe_backend.Executor.stats
(** [run backend cloud compiled inputs] evaluates the program
    homomorphically (inputs/outputs in declaration order) on the chosen
    backend, returning the unified stats record.  Execution knobs ride in
    [?opts] (default {!Pytfhe_backend.Executor.default_opts}): an enabled
    [opts.obs] sink collects spans/counters/gauges (see
    {!Pytfhe_obs.Trace} and [docs/observability.md]); [opts.batch = Some b]
    routes the Cpu/Multicore backends through the key-streaming batched
    kernel in sub-batches of at most [b] gates, and [opts.soa] (default
    [true]) runs those sub-batches through the struct-of-arrays row
    kernels on contiguous {!Pytfhe_tfhe.Lwe_array} waves (bit-exact with
    the scalar path either way) — see [docs/perf.md].  Multiprocess
    raises [Invalid_argument] on the batch/soa knobs instead of silently
    dropping them. *)

val run_legacy :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?batch:int ->
  ?soa:bool ->
  exec_backend ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  Pipeline.compiled ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * Pytfhe_backend.Executor.stats
(** @deprecated The pre-[Executor.opts] flag triple, kept for one
    release; equivalent to [run ~opts:{ obs; batch; soa }]. *)

(** {2 Cost-model simulation} *)

(** A priced platform of the paper's evaluation — never executed here. *)
type sim_platform =
  | Single_core
  | Distributed of { nodes : int }
  | Gpu of Pytfhe_backend.Cost_model.gpu
  | Gpu_cufhe of Pytfhe_backend.Cost_model.gpu  (** The cuFHE baseline executor. *)

val sim_platform_name : sim_platform -> string

val estimate :
  ?cost:Pytfhe_backend.Cost_model.cpu -> sim_platform -> Pipeline.compiled -> float
(** Simulated wall-clock seconds for the program on the given platform
    (default CPU calibration: the paper's). *)

val speedup_over_single_core :
  ?cost:Pytfhe_backend.Cost_model.cpu -> sim_platform -> Pipeline.compiled -> float

(** {2 Keyset persistence} *)

val save_cloud_keyset : Pytfhe_tfhe.Gates.cloud_keyset -> string -> unit
(** Persist the evaluation keys the client ships to the server. *)

val load_cloud_keyset : string -> Pytfhe_tfhe.Gates.cloud_keyset
(** Raises [Pytfhe_util.Wire.Corrupt] on malformed input. *)
