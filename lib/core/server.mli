(** The server side: execute compiled TFHE programs on ciphertexts.

    [evaluate] is the real thing — every gate is a genuine bootstrapping
    over LWE ciphertexts, single-core.  [estimate] prices a program on any
    of the paper's platforms through the calibrated cost models (see
    DESIGN.md for why the cluster and the GPUs are simulated). *)

type backend =
  | Single_core
  | Distributed of { nodes : int }
  | Gpu of Pytfhe_backend.Cost_model.gpu
  | Gpu_cufhe of Pytfhe_backend.Cost_model.gpu  (** The cuFHE baseline executor. *)

val backend_name : backend -> string

val evaluate :
  Pytfhe_tfhe.Gates.cloud_keyset -> Pipeline.compiled -> Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * Pytfhe_backend.Tfhe_eval.stats
(** Homomorphic evaluation (inputs/outputs in declaration order). *)

val evaluate_parallel :
  ?workers:int ->
  Pytfhe_tfhe.Gates.cloud_keyset -> Pipeline.compiled -> Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * Pytfhe_backend.Par_eval.stats
(** Like {!evaluate}, but wave-parallel across OCaml 5 domains
    ({!Pytfhe_backend.Par_eval}).  Bit-exact with {!evaluate}; default
    worker count is [Domain.recommended_domain_count ()]. *)

val evaluate_distributed :
  ?workers:int ->
  ?config:Pytfhe_backend.Dist_eval.config ->
  Pytfhe_tfhe.Gates.cloud_keyset -> Pipeline.compiled -> Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * Pytfhe_backend.Dist_eval.stats
(** Like {!evaluate}, but sharded across real worker OS processes
    ({!Pytfhe_backend.Dist_eval}).  Bit-exact with {!evaluate}; [workers]
    defaults to 2 and is ignored when [config] is given.  The calling
    executable must invoke {!Pytfhe_backend.Dist_eval.worker_entry} at the
    start of main. *)

val estimate :
  ?cost:Pytfhe_backend.Cost_model.cpu -> backend -> Pipeline.compiled -> float
(** Simulated wall-clock seconds for the program on the given backend
    (default CPU calibration: the paper's). *)

val speedup_over_single_core :
  ?cost:Pytfhe_backend.Cost_model.cpu -> backend -> Pipeline.compiled -> float

val save_cloud_keyset : Pytfhe_tfhe.Gates.cloud_keyset -> string -> unit
(** Persist the evaluation keys the client ships to the server. *)

val load_cloud_keyset : string -> Pytfhe_tfhe.Gates.cloud_keyset
(** Raises [Pytfhe_util.Wire.Corrupt] on malformed input. *)
