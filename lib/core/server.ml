open Pytfhe_backend

(* ------------------------------------------------------------------ *)
(* Real execution                                                      *)
(* ------------------------------------------------------------------ *)

type exec_backend =
  | Cpu
  | Multicore of { workers : int }
  | Multiprocess of { workers : int; config : Dist_eval.config option }

(* Round-trippable names: [exec_backend_of_name (exec_backend_name b)]
   recovers [b] (modulo an explicit [config], which has no spelling), and
   the spellings are exactly what the CLI's [--backend] flag accepts, so
   "serve --backend dist" and the bench artifacts agree on names. *)
let exec_backend_name = function
  | Cpu -> "cpu"
  | Multicore { workers } ->
    if workers = 0 then "par" else Printf.sprintf "par:%d" workers
  | Multiprocess { workers; config } ->
    let w = match config with Some c -> c.Dist_eval.workers | None -> workers in
    Printf.sprintf "dist:%d" w

let exec_backend_of_name s =
  let workers_of tail ~who =
    match int_of_string_opt tail with
    | Some w when w >= 1 -> Ok w
    | _ -> Error (Printf.sprintf "%s: worker count must be a positive integer, got %S" who tail)
  in
  match String.split_on_char ':' s with
  | [ "cpu" ] -> Ok Cpu
  | [ "par" ] -> Ok (Multicore { workers = 0 })
  | [ "par"; w ] ->
    Result.map (fun workers -> Multicore { workers }) (workers_of w ~who:"par")
  | [ "dist" ] -> Ok (Multiprocess { workers = 2; config = None })
  | [ "dist"; w ] ->
    Result.map (fun workers -> Multiprocess { workers; config = None }) (workers_of w ~who:"dist")
  | _ ->
    Error
      (Printf.sprintf
         "unknown backend %S (expected cpu, par, par:N, dist or dist:N)" s)

let executor = function
  | Cpu -> Executor.cpu
  | Multicore { workers } ->
    if workers = 0 then Executor.multicore () else Executor.multicore ~workers ()
  | Multiprocess { workers; config } ->
    Executor.multiprocess ~workers ?config ()

let run ?opts backend cloud compiled inputs =
  let (module E : Executor.S) = executor backend in
  E.run ?opts cloud compiled.Pipeline.netlist inputs

let run_legacy ?obs ?batch ?soa backend cloud compiled inputs =
  run ~opts:(Exec_opts.of_flags ?obs ?batch ?soa ()) backend cloud compiled inputs

(* ------------------------------------------------------------------ *)
(* Cost-model simulation                                               *)
(* ------------------------------------------------------------------ *)

type sim_platform =
  | Single_core
  | Distributed of { nodes : int }
  | Gpu of Cost_model.gpu
  | Gpu_cufhe of Cost_model.gpu


let sim_platform_name = function
  | Single_core -> "single-core CPU"
  | Distributed { nodes } -> Printf.sprintf "distributed CPU (%d nodes)" nodes
  | Gpu g -> Printf.sprintf "GPU (%s)" g.Cost_model.gpu_name
  | Gpu_cufhe g -> Printf.sprintf "cuFHE (%s)" g.Cost_model.gpu_name


let estimate ?(cost = Cost_model.paper_cpu) platform compiled =
  let sched = compiled.Pipeline.schedule in
  match platform with
  | Single_core ->
    float_of_int sched.Pytfhe_circuit.Levelize.total_bootstraps *. cost.Cost_model.gate_time
  | Distributed { nodes } -> (Sched_cpu.simulate { Sched_cpu.nodes; cost } sched).Sched_cpu.makespan
  | Gpu g -> (Sched_gpu.simulate_pytfhe g ~cpu:cost sched).Sched_gpu.makespan
  | Gpu_cufhe g -> (Sched_gpu.simulate_cufhe g ~cpu:cost sched).Sched_gpu.makespan

let speedup_over_single_core ?cost platform compiled =
  let single = estimate ?cost Single_core compiled in
  let t = estimate ?cost platform compiled in
  if t > 0.0 then single /. t else 0.0

(* ------------------------------------------------------------------ *)
(* Keyset persistence                                                  *)
(* ------------------------------------------------------------------ *)

module Wire = Pytfhe_util.Wire

let save_cloud_keyset ck path =
  let buf = Buffer.create (1 lsl 20) in
  Pytfhe_tfhe.Gates.write_cloud_keyset buf ck;
  Wire.to_file path buf

let load_cloud_keyset path = Pytfhe_tfhe.Gates.read_cloud_keyset (Wire.of_file path)
