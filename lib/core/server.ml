open Pytfhe_backend

(* ------------------------------------------------------------------ *)
(* Real execution                                                      *)
(* ------------------------------------------------------------------ *)

type exec_backend =
  | Cpu
  | Multicore of { workers : int }
  | Multiprocess of { workers : int; config : Dist_eval.config option }

let exec_backend_name = function
  | Cpu -> "cpu"
  | Multicore { workers } ->
    if workers = 0 then "multicore" else Printf.sprintf "multicore (%d workers)" workers
  | Multiprocess { workers; config } ->
    let w = match config with Some c -> c.Dist_eval.workers | None -> workers in
    Printf.sprintf "multiprocess (%d workers)" w

let executor = function
  | Cpu -> Executor.cpu
  | Multicore { workers } ->
    if workers = 0 then Executor.multicore () else Executor.multicore ~workers ()
  | Multiprocess { workers; config } ->
    Executor.multiprocess ~workers ?config ()

let run ?obs ?batch ?soa backend cloud compiled inputs =
  let (module E : Executor.S) = executor backend in
  E.run ?obs ?batch ?soa cloud compiled.Pipeline.netlist inputs

(* ------------------------------------------------------------------ *)
(* Cost-model simulation                                               *)
(* ------------------------------------------------------------------ *)

type sim_platform =
  | Single_core
  | Distributed of { nodes : int }
  | Gpu of Cost_model.gpu
  | Gpu_cufhe of Cost_model.gpu

type backend = sim_platform

let sim_platform_name = function
  | Single_core -> "single-core CPU"
  | Distributed { nodes } -> Printf.sprintf "distributed CPU (%d nodes)" nodes
  | Gpu g -> Printf.sprintf "GPU (%s)" g.Cost_model.gpu_name
  | Gpu_cufhe g -> Printf.sprintf "cuFHE (%s)" g.Cost_model.gpu_name

let backend_name = sim_platform_name

let estimate ?(cost = Cost_model.paper_cpu) platform compiled =
  let sched = compiled.Pipeline.schedule in
  match platform with
  | Single_core ->
    float_of_int sched.Pytfhe_circuit.Levelize.total_bootstraps *. cost.Cost_model.gate_time
  | Distributed { nodes } -> (Sched_cpu.simulate { Sched_cpu.nodes; cost } sched).Sched_cpu.makespan
  | Gpu g -> (Sched_gpu.simulate_pytfhe g ~cpu:cost sched).Sched_gpu.makespan
  | Gpu_cufhe g -> (Sched_gpu.simulate_cufhe g ~cpu:cost sched).Sched_gpu.makespan

let speedup_over_single_core ?cost platform compiled =
  let single = estimate ?cost Single_core compiled in
  let t = estimate ?cost platform compiled in
  if t > 0.0 then single /. t else 0.0

(* ------------------------------------------------------------------ *)
(* Deprecated entry points (pre-Executor API)                          *)
(* ------------------------------------------------------------------ *)

let evaluate cloud compiled inputs = Tfhe_eval.run cloud compiled.Pipeline.netlist inputs

let evaluate_parallel ?workers cloud compiled inputs =
  Par_eval.run ?workers cloud compiled.Pipeline.netlist inputs

let evaluate_distributed ?(workers = 2) ?config cloud compiled inputs =
  let cfg = match config with Some c -> c | None -> Dist_eval.config workers in
  Dist_eval.run cfg cloud compiled.Pipeline.netlist inputs

(* ------------------------------------------------------------------ *)
(* Keyset persistence                                                  *)
(* ------------------------------------------------------------------ *)

module Wire = Pytfhe_util.Wire

let save_cloud_keyset ck path =
  let buf = Buffer.create (1 lsl 20) in
  Pytfhe_tfhe.Gates.write_cloud_keyset buf ck;
  Wire.to_file path buf

let load_cloud_keyset path = Pytfhe_tfhe.Gates.read_cloud_keyset (Wire.of_file path)
