module Rng = Pytfhe_util.Rng
open Pytfhe_tfhe

type t = { secret : Gates.secret_keyset; rng : Rng.t; keyswitch : Keyswitch.key }

let keygen ?(params = Params.default_128) ?(seed = 0xC11E47) () =
  let rng = Rng.create ~seed () in
  let secret, cloud = Gates.key_gen rng params in
  ({ secret; rng; keyswitch = cloud.Gates.keyswitch_key }, cloud)

let params t = t.secret.Gates.params

let encrypt_bit t b = Gates.encrypt_bit t.rng t.secret b
let decrypt_bit t c = Gates.decrypt_bit t.secret c

let encrypt_bits t bits = Array.map (encrypt_bit t) bits
let decrypt_bits t cs = Array.map (decrypt_bit t) cs

let encrypt_value t dtype v =
  let pattern = Pytfhe_chiseltorch.Dtype.encode dtype v in
  let w = Pytfhe_chiseltorch.Dtype.width dtype in
  encrypt_bits t (Array.init w (fun i -> (pattern asr i) land 1 = 1))

let decrypt_value t dtype cs =
  let bits = decrypt_bits t cs in
  let pattern = ref 0 in
  Array.iteri (fun i b -> if b then pattern := !pattern lor (1 lsl i)) bits;
  Pytfhe_chiseltorch.Dtype.decode dtype !pattern

let cloud_key_bytes t =
  Bootstrap.key_bytes (params t) + Keyswitch.table_bytes t.keyswitch

let client_id t =
  let buf = Buffer.create 4096 in
  Gates.write_secret_keyset buf t.secret;
  String.sub (Digest.to_hex (Digest.string (Buffer.contents buf))) 0 16

module Wire = Pytfhe_util.Wire

let save t path =
  let buf = Buffer.create 4096 in
  Gates.write_secret_keyset buf t.secret;
  Wire.to_file path buf

let load path =
  let r = Wire.of_file path in
  let secret = Gates.read_secret_keyset r in
  (* The key-switch table is part of the cloud keyset; clients reloaded
     from disk only need it for size reporting, so regenerate lazily is not
     worth it — recompute it from the secret keys deterministically. *)
  let rng = Rng.create ~seed:0xC11E47 () in
  let keyswitch =
    Keyswitch.key_gen rng secret.Gates.params ~in_key:secret.Gates.extracted_key
      ~out_key:secret.Gates.lwe_key
  in
  { secret; rng; keyswitch }
