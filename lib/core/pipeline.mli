(** The end-to-end PyTFHE compilation pipeline (paper Fig. 2):

    frontend (ChiselTorch model or hand-built circuit)
    → synthesis optimization (the Yosys role)
    → PyTFHE assembler (128-bit binary format)
    → any execution backend.

    A {!compiled} program carries every artifact later stages need: the
    optimized netlist, the binary, statistics and the BFS schedule. *)

type compiled = {
  prog_name : string;
  netlist : Pytfhe_circuit.Netlist.t;  (** After optimization. *)
  binary : bytes;  (** Assembled PyTFHE binary (Fig. 5). *)
  stats : Pytfhe_circuit.Stats.t;
  schedule : Pytfhe_circuit.Levelize.schedule;
  opt_report : Pytfhe_synth.Opt.report option;  (** [None] if unoptimized. *)
}

val compile :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?optimize:bool -> ?lut_cover:bool -> name:string -> Pytfhe_circuit.Netlist.t -> compiled
(** Optimize (default [true]), levelize and assemble a circuit.  With
    [~lut_cover:true] (default [false]) the synthesis phase runs
    {!Pytfhe_synth.Opt.lut_cover} instead of plain {!Pytfhe_synth.Opt.optimize}:
    gate cones collapse into programmable LUT cells, typically cutting the
    bootstrap count well below the classic gate library's (the CLI exposes
    this as [--lut-cover]).  With an enabled [obs] sink, emits one span per
    compile phase (optimize or lut-cover/assemble/stats/levelize) on a
    ["compile"] track. *)

val of_binary : ?max_bytes:int -> name:string -> bytes -> compiled
(** Rehydrate a compiled program from an assembled PyTFHE binary — the
    ingestion path of the FHE-as-a-service server, whose clients submit
    programs as binaries, not netlists.  Recomputes stats and the BFS
    schedule from the parsed netlist; [opt_report] is [None] (synthesis
    happened, if at all, on the submitting side).  With [?max_bytes], a
    binary longer than the cap is rejected with
    [Pytfhe_util.Wire.Corrupt] {e before} any instruction is decoded —
    the service's admission check against oversized submissions.  Raises
    [Pytfhe_util.Wire.Corrupt] on structurally corrupt LUT records and
    [Failure] on malformed streams, like {!Pytfhe_circuit.Binary.parse}. *)

val of_binary_source : name:string -> (unit -> bytes option) -> compiled
(** Like {!of_binary} over a chunked pull source
    ({!Pytfhe_circuit.Binary.parse_source}): the submitted stream is
    parsed incrementally, so the client's binary is never resident in
    full during ingestion.  The returned [binary] is the canonical
    re-assembly of the parsed netlist — byte-identical to the submitted
    stream except that a sentinel (streamed) header resolves to the exact
    gate count. *)

(** {2 Streaming compilation}

    The bounded-memory path for paper-scale programs: the builder
    callback constructs the circuit into a windowed netlist while an
    observer levelizes each node incrementally
    ({!Pytfhe_circuit.Levelize.Inc}) and emits its binary instruction to
    the sink ({!Pytfhe_circuit.Binary.Emit}) — the full binary is never
    resident, CSE tables stay bounded by [window], and no whole-DAG
    sweep runs at the end. *)

type stream_report = {
  gates : int;  (** Exact gate total (what a buffered header backpatch records). *)
  bootstraps : int;
  depth : int;  (** Waves = critical path in bootstrapped gates. *)
  max_width : int;  (** Peak exploitable parallelism. *)
  node_count : int;
  bytes_emitted : int;  (** Binary bytes pushed to the sink. *)
  cse_peak : int;  (** High-water mark of the structural-hashing tables. *)
  cse_evicted : int;  (** Entries evicted under a positive [window]. *)
  stream_schedule : Pytfhe_circuit.Levelize.schedule;
      (** Full schedule snapshot, for backend cost models
          ({!Pytfhe_backend.Sched_gpu} batching and the like). *)
}

val compile_stream :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?hash_consing:bool ->
  ?fold_constants:bool ->
  ?window:int ->
  ?chunk:int ->
  name:string ->
  sink:(bytes -> unit) ->
  (Pytfhe_circuit.Netlist.t -> unit) ->
  stream_report
(** [compile_stream ~name ~sink builder] hands [builder] a fresh netlist
    (construction-time optimizations on by default; [window] bounds the
    CSE tables as in {!Pytfhe_circuit.Netlist.create}) and streams the
    assembled binary to [sink] in chunks of roughly [chunk] bytes
    (default 64 KiB) as construction proceeds.  The emitted header
    carries {!Pytfhe_circuit.Binary.streamed_gate_total} — executors
    treat the count as unknown; buffered or seekable sinks can backpatch
    it with {!Pytfhe_circuit.Binary.patch_header} and [report.gates]
    (which {!compile_stream_to_bytes} / {!compile_stream_to_file} do).
    No synthesis pass runs — streaming trades whole-program optimization
    for bounded memory, relying on the construction-time optimizations
    and frontend-level template reuse instead.  The byte stream is
    identical (modulo the header) to [compile ~optimize:false] over a
    netlist built identically.  With an enabled [obs] sink, emits one
    ["<name>:stream"] span on the ["compile"] track. *)

val compile_stream_to_bytes :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?hash_consing:bool ->
  ?fold_constants:bool ->
  ?window:int ->
  ?chunk:int ->
  name:string ->
  (Pytfhe_circuit.Netlist.t -> unit) ->
  bytes * stream_report
(** {!compile_stream} into a buffer, with the header backpatched to the
    exact gate total — the drop-in replacement for
    [compile ~optimize:false] when the caller wants the bytes (and the
    differential tests' reference). *)

val compile_stream_to_file :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?hash_consing:bool ->
  ?fold_constants:bool ->
  ?window:int ->
  ?chunk:int ->
  name:string ->
  path:string ->
  (Pytfhe_circuit.Netlist.t -> unit) ->
  stream_report
(** {!compile_stream} into a file, seeking back to backpatch the header
    once the gate total is known.  Peak memory is one chunk plus the
    windowed netlist — the path for programs whose binaries do not fit
    in memory. *)

val compile_model :
  name:string -> dtype:Pytfhe_chiseltorch.Dtype.t -> input_shape:int array ->
  Pytfhe_chiseltorch.Nn.model -> compiled
(** The ChiselTorch path: PyTorch-style model → circuit → binary.  Inputs
    are the flattened tensor elements ([x.<i>]), outputs the result
    elements ([y.<i>]). *)

val compile_workload : Pytfhe_vipbench.Workload.t -> compiled
(** Compile a registered benchmark. *)

val pp_summary : Format.formatter -> compiled -> unit

val failure_probability : compiled -> Pytfhe_tfhe.Params.t -> float
(** Probability that at least one of the program's bootstrapped gates
    decides the wrong sign under the given parameters — the end-to-end
    correctness bound a deployment should check before shipping a cloud
    key ([1 − (1 − p_gate)^bootstraps], from {!Pytfhe_tfhe.Noise}). *)

val check_correctness :
  compiled -> Pytfhe_tfhe.Params.t -> [ `Ok of float | `Risky of float ]
(** [`Risky] when the whole-program failure probability exceeds 2⁻²⁰. *)
