(** The end-to-end PyTFHE compilation pipeline (paper Fig. 2):

    frontend (ChiselTorch model or hand-built circuit)
    → synthesis optimization (the Yosys role)
    → PyTFHE assembler (128-bit binary format)
    → any execution backend.

    A {!compiled} program carries every artifact later stages need: the
    optimized netlist, the binary, statistics and the BFS schedule. *)

type compiled = {
  prog_name : string;
  netlist : Pytfhe_circuit.Netlist.t;  (** After optimization. *)
  binary : bytes;  (** Assembled PyTFHE binary (Fig. 5). *)
  stats : Pytfhe_circuit.Stats.t;
  schedule : Pytfhe_circuit.Levelize.schedule;
  opt_report : Pytfhe_synth.Opt.report option;  (** [None] if unoptimized. *)
}

val compile :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?optimize:bool -> ?lut_cover:bool -> name:string -> Pytfhe_circuit.Netlist.t -> compiled
(** Optimize (default [true]), levelize and assemble a circuit.  With
    [~lut_cover:true] (default [false]) the synthesis phase runs
    {!Pytfhe_synth.Opt.lut_cover} instead of plain {!Pytfhe_synth.Opt.optimize}:
    gate cones collapse into programmable LUT cells, typically cutting the
    bootstrap count well below the classic gate library's (the CLI exposes
    this as [--lut-cover]).  With an enabled [obs] sink, emits one span per
    compile phase (optimize or lut-cover/assemble/stats/levelize) on a
    ["compile"] track. *)

val of_binary : name:string -> bytes -> compiled
(** Rehydrate a compiled program from an assembled PyTFHE binary — the
    ingestion path of the FHE-as-a-service server, whose clients submit
    programs as binaries, not netlists.  Recomputes stats and the BFS
    schedule from the parsed netlist; [opt_report] is [None] (synthesis
    happened, if at all, on the submitting side).  Raises
    [Pytfhe_util.Wire.Corrupt] on structurally corrupt LUT records and
    [Failure] on malformed streams, like {!Pytfhe_circuit.Binary.parse}. *)

val compile_model :
  name:string -> dtype:Pytfhe_chiseltorch.Dtype.t -> input_shape:int array ->
  Pytfhe_chiseltorch.Nn.model -> compiled
(** The ChiselTorch path: PyTorch-style model → circuit → binary.  Inputs
    are the flattened tensor elements ([x.<i>]), outputs the result
    elements ([y.<i>]). *)

val compile_workload : Pytfhe_vipbench.Workload.t -> compiled
(** Compile a registered benchmark. *)

val pp_summary : Format.formatter -> compiled -> unit

val failure_probability : compiled -> Pytfhe_tfhe.Params.t -> float
(** Probability that at least one of the program's bootstrapped gates
    decides the wrong sign under the given parameters — the end-to-end
    correctness bound a deployment should check before shipping a cloud
    key ([1 − (1 − p_gate)^bootstraps], from {!Pytfhe_tfhe.Noise}). *)

val check_correctness :
  compiled -> Pytfhe_tfhe.Params.t -> [ `Ok of float | `Risky of float ]
(** [`Risky] when the whole-program failure probability exceeds 2⁻²⁰. *)
