(** Boolean optimization passes over netlists — the role Yosys plays in the
    paper's flow (step 2): reduce the gate count of the combinational design
    before assembly, since TFHE execution time is proportional to the number
    of bootstrapped gates.

    Passes:
    - {b constant folding} — gates with constant or duplicate fan-ins
      collapse to constants, wires, or negations;
    - {b structural hashing (CSE)} — identical gates (up to commutative and
      NY/YN-mirror canonicalisation) are shared;
    - {b inverter absorption} — a NOT feeding a binary gate is folded into
      the gate using the ANDNY/ANDYN/ORNY/ORYN family, e.g.
      AND(¬a, b) → ANDNY(a, b);
    - {b dead-gate elimination} — gates not reachable from any output are
      dropped.

    All passes preserve the input/output interface and the boolean function
    computed at every output. *)

type report = {
  gates_before : int;
  gates_after : int;
  bootstraps_before : int;
  bootstraps_after : int;
}

val rebuild :
  ?hash_consing:bool -> ?fold_constants:bool -> ?absorb_not:bool -> ?dce:bool ->
  Pytfhe_circuit.Netlist.t -> Pytfhe_circuit.Netlist.t
(** Re-emit a netlist through an optimizing builder; each optimization can
    be toggled independently (for the ablation benches). *)

val optimize : Pytfhe_circuit.Netlist.t -> Pytfhe_circuit.Netlist.t * report
(** Run all passes and report the gate-count change. *)

val lut_cover : Pytfhe_circuit.Netlist.t -> Pytfhe_circuit.Netlist.t * report
(** Greedy programmable-LUT covering: enumerate 2-/3-input cuts per gate
    (NOT gates are transparent — table polarity absorbs them for free),
    then cover gates whose cone balance pays for itself: roots sharing a
    leaf tuple ride one blind rotation, classic leaves cost one shared
    reencode cell each, and a cover is committed only when the bootstraps
    it removes (the roots plus their newly-dead exclusive cone interior)
    meet or beat that price.  Runs {!rebuild} before and after, so the
    result is also folded, hashed and dead-code-free.  Outputs compute the
    same boolean functions; bootstrap counts ({!report}, or
    [Pytfhe_circuit.Stats]) drop on LUT-friendly structures such as adder
    and comparator chains. *)

val pp_report : Format.formatter -> report -> unit

val equivalent :
  ?trials:int -> ?seed:int -> Pytfhe_circuit.Netlist.t -> Pytfhe_circuit.Netlist.t -> bool
(** Functional equivalence check.  Circuits with at most 16 inputs are
    compared exhaustively; larger ones by [trials] random input vectors
    (sound rejections, probabilistic acceptance).  Interfaces must match
    (same input and output counts). *)
