module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Json = Pytfhe_util.Json

exception Import_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Import_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let bit_of_node net id =
  match Netlist.kind net id with
  | Netlist.Const false -> Json.String "0"
  | Netlist.Const true -> Json.String "1"
  | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> Json.Number (float_of_int (id + 2))

let cell_of_gate g =
  (* (yosys type, input port bindings given fan-ins a b) *)
  match g with
  | Gate.And -> ("$_AND_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Or -> ("$_OR_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Xor -> ("$_XOR_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Nand -> ("$_NAND_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Nor -> ("$_NOR_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Xnor -> ("$_XNOR_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Not -> ("$_NOT_", fun a _ -> [ ("A", a) ])
  | Gate.Andyn -> ("$_ANDNOT_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Andny -> ("$_ANDNOT_", fun a b -> [ ("A", b); ("B", a) ])
  | Gate.Oryn -> ("$_ORNOT_", fun a b -> [ ("A", a); ("B", b) ])
  | Gate.Orny -> ("$_ORNOT_", fun a b -> [ ("A", b); ("B", a) ])

let export ?(module_name = "pytfhe_top") net =
  (* Yosys's 2-input gate-level cell library has no programmable LUT cell;
     export before covering, or not at all. *)
  if Netlist.has_luts net then
    invalid_arg "Yosys_json.export: netlist contains LUT cells (no yosys cell type)";
  let ports =
    List.map
      (fun (name, id) ->
        ( name,
          Json.Obj
            [ ("direction", Json.String "input"); ("bits", Json.List [ bit_of_node net id ]) ] ))
      (Netlist.inputs net)
    @ List.map
        (fun (name, id) ->
          ( name,
            Json.Obj
              [ ("direction", Json.String "output"); ("bits", Json.List [ bit_of_node net id ]) ]
          ))
        (Netlist.outputs net)
  in
  let cells = ref [] in
  Netlist.iter_gates net (fun id g a b ->
      let cell_type, bind = cell_of_gate g in
      let inputs = bind (bit_of_node net a) (bit_of_node net b) in
      let connections = inputs @ [ ("Y", Json.Number (float_of_int (id + 2))) ] in
      let directions =
        List.map (fun (port, _) -> (port, Json.String (if port = "Y" then "output" else "input")))
          connections
      in
      cells :=
        ( Printf.sprintf "g%d" id,
          Json.Obj
            [
              ("hide_name", Json.Number 1.0);
              ("type", Json.String cell_type);
              ("port_directions", Json.Obj directions);
              ("connections", Json.Obj (List.map (fun (p, b) -> (p, Json.List [ b ])) connections));
            ] )
        :: !cells);
  let doc =
    Json.Obj
      [
        ("creator", Json.String "pytfhe");
        ( "modules",
          Json.Obj
            [
              ( module_name,
                Json.Obj [ ("ports", Json.Obj ports); ("cells", Json.Obj (List.rev !cells)) ] );
            ] );
      ]
  in
  Json.to_string ~indent:true doc

(* ------------------------------------------------------------------ *)
(* Import                                                              *)
(* ------------------------------------------------------------------ *)

type bit = Net of int | Const_bit of bool

let bit_of_json = function
  | Json.Number f when Float.is_integer f -> Net (int_of_float f)
  | Json.String "0" -> Const_bit false
  | Json.String "1" -> Const_bit true
  | Json.String s -> fail "unsupported constant bit %S" s
  | _ -> fail "malformed bit"

let obj_members label = function
  | Json.Obj members -> members
  | _ -> fail "expected an object for %s" label

let get label json key =
  match Json.member key json with Some v -> v | None -> fail "missing %s.%s" label key

let import source =
  let doc = Json.parse source in
  let modules = obj_members "modules" (get "document" doc "modules") in
  let module_name, module_json =
    match modules with
    | [ m ] -> m
    | [] -> fail "no modules in document"
    | _ -> fail "expected exactly one module"
  in
  ignore module_name;
  let ports = obj_members "ports" (get "module" module_json "ports") in
  let cells =
    match Json.member "cells" module_json with
    | Some c -> obj_members "cells" c
    | None -> []
  in
  let net = Netlist.create () in
  (* Index the nets: inputs map directly; cells map via their output port. *)
  let resolved : (int, Netlist.id) Hashtbl.t = Hashtbl.create 256 in
  let driver : (int, string * Json.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (cell_name, cell) ->
      let connections = obj_members "connections" (get "cell" cell "connections") in
      match List.assoc_opt "Y" connections with
      | Some (Json.List [ y ]) -> (
        match bit_of_json y with
        | Net n ->
          if Hashtbl.mem driver n then fail "net %d has multiple drivers" n;
          Hashtbl.replace driver n (cell_name, cell)
        | Const_bit _ -> fail "cell %s drives a constant bit" cell_name)
      | Some _ -> fail "cell %s must drive exactly one Y bit" cell_name
      | None -> fail "cell %s has no Y output" cell_name)
    cells;
  (* Input ports first (declaration order defines the input order). *)
  List.iter
    (fun (port_name, port) ->
      match Json.to_str (get "port" port "direction") with
      | Some "input" ->
        let bits = Option.value ~default:[] (Json.to_list (get "port" port "bits")) in
        let many = List.length bits > 1 in
        List.iteri
          (fun i b ->
            match bit_of_json b with
            | Net n ->
              let name = if many then Printf.sprintf "%s[%d]" port_name i else port_name in
              if Hashtbl.mem resolved n then fail "net %d driven by two ports" n;
              Hashtbl.replace resolved n (Netlist.input net name)
            | Const_bit _ -> fail "input port %s lists a constant bit" port_name)
          bits
      | Some "output" -> ()
      | Some d -> fail "unsupported port direction %S" d
      | None -> fail "port %s has no direction" port_name)
    ports;
  let in_progress = Hashtbl.create 64 in
  let rec resolve b =
    match b with
    | Const_bit v -> Netlist.const net v
    | Net n -> (
      match Hashtbl.find_opt resolved n with
      | Some id -> id
      | None -> (
        if Hashtbl.mem in_progress n then fail "combinational cycle through net %d" n;
        Hashtbl.replace in_progress n ();
        match Hashtbl.find_opt driver n with
        | None -> fail "net %d has no driver" n
        | Some (cell_name, cell) ->
          let id = build_cell cell_name cell in
          Hashtbl.remove in_progress n;
          Hashtbl.replace resolved n id;
          id))
  and cell_input cell cell_name port =
    let connections = obj_members "connections" (get "cell" cell "connections") in
    match List.assoc_opt port connections with
    | Some (Json.List [ b ]) -> resolve (bit_of_json b)
    | Some _ | None -> fail "cell %s: missing 1-bit port %s" cell_name port
  and build_cell cell_name cell =
    let cell_type = Option.value ~default:"?" (Json.to_str (get "cell" cell "type")) in
    let a () = cell_input cell cell_name "A" in
    let b () = cell_input cell cell_name "B" in
    match cell_type with
    | "$_NOT_" -> Netlist.not_ net (a ())
    | "$_BUF_" -> a ()
    | "$_AND_" -> Netlist.gate net Gate.And (a ()) (b ())
    | "$_OR_" -> Netlist.gate net Gate.Or (a ()) (b ())
    | "$_XOR_" -> Netlist.gate net Gate.Xor (a ()) (b ())
    | "$_NAND_" -> Netlist.gate net Gate.Nand (a ()) (b ())
    | "$_NOR_" -> Netlist.gate net Gate.Nor (a ()) (b ())
    | "$_XNOR_" -> Netlist.gate net Gate.Xnor (a ()) (b ())
    | "$_ANDNOT_" -> Netlist.gate net Gate.Andyn (a ()) (b ())
    | "$_ORNOT_" -> Netlist.gate net Gate.Oryn (a ()) (b ())
    | "$_MUX_" ->
      (* Yosys $_MUX_: Y = S ? B : A. *)
      let s = cell_input cell cell_name "S" in
      Netlist.mux net s (b ()) (a ())
    | t -> fail "unsupported cell type %S (run `abc -g simple` first)" t
  in
  List.iter
    (fun (port_name, port) ->
      match Json.to_str (get "port" port "direction") with
      | Some "output" ->
        let bits = Option.value ~default:[] (Json.to_list (get "port" port "bits")) in
        let many = List.length bits > 1 in
        List.iteri
          (fun i b ->
            let name = if many then Printf.sprintf "%s[%d]" port_name i else port_name in
            Netlist.mark_output net name (resolve (bit_of_json b)))
          bits
      | Some _ | None -> ())
    ports;
  net
