module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate

type report = {
  gates_before : int;
  gates_after : int;
  bootstraps_before : int;
  bootstraps_after : int;
}

(* g' such that g' (x, b) = g (¬x, b); the 11-gate library is closed under
   input negation, which is what makes inverter absorption free. *)
let negate_left = function
  | Gate.And -> Gate.Andny
  | Gate.Or -> Gate.Orny
  | Gate.Xor -> Gate.Xnor
  | Gate.Xnor -> Gate.Xor
  | Gate.Nand -> Gate.Oryn
  | Gate.Nor -> Gate.Andyn
  | Gate.Andny -> Gate.And
  | Gate.Andyn -> Gate.Nor
  | Gate.Orny -> Gate.Or
  | Gate.Oryn -> Gate.Nand
  | Gate.Not -> Gate.Not

let negate_right = function
  | Gate.And -> Gate.Andyn
  | Gate.Or -> Gate.Oryn
  | Gate.Xor -> Gate.Xnor
  | Gate.Xnor -> Gate.Xor
  | Gate.Nand -> Gate.Orny
  | Gate.Nor -> Gate.Andny
  | Gate.Andny -> Gate.Nor
  | Gate.Andyn -> Gate.And
  | Gate.Orny -> Gate.Nand
  | Gate.Oryn -> Gate.Or
  | Gate.Not -> Gate.Not

let rebuild ?(hash_consing = true) ?(fold_constants = true) ?(absorb_not = true) ?(dce = true) net =
  let n = Netlist.node_count net in
  (* Backward reachability from the outputs for dead-gate elimination. *)
  let live = Array.make n (not dce) in
  if dce then begin
    List.iter (fun (_, id) -> live.(id) <- true) (Netlist.outputs net);
    for id = n - 1 downto 0 do
      if live.(id) then
        match Netlist.kind net id with
        | Netlist.Gate (_, a, b) ->
          live.(a) <- true;
          live.(b) <- true
        | Netlist.Lut { ins; _ } -> Array.iter (fun a -> live.(a) <- true) ins
        | Netlist.Input _ | Netlist.Const _ -> ()
    done
  end;
  let fresh = Netlist.create ~hash_consing ~fold_constants () in
  let map = Array.make n (-1) in
  let input_names = Array.make n "" in
  List.iter (fun (name, id) -> input_names.(id) <- name) (Netlist.inputs net);
  let not_input id =
    (* If the (new) node is a NOT gate, return what it negates. *)
    match Netlist.kind fresh id with
    | Netlist.Gate (Gate.Not, x, _) -> Some x
    | Netlist.Gate _ | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> None
  in
  let emit g a b =
    if not absorb_not then Netlist.gate fresh g a b
    else begin
      let g, a =
        match not_input a with
        | Some x when not (Gate.is_unary g) -> (negate_left g, x)
        | Some _ | None -> (g, a)
      in
      let g, b =
        match not_input b with
        | Some x when not (Gate.is_unary g) -> (negate_right g, x)
        | Some _ | None -> (g, b)
      in
      Netlist.gate fresh g a b
    end
  in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Input _ ->
      (* Inputs are always preserved to keep the interface stable. *)
      map.(id) <- Netlist.input fresh input_names.(id)
    | Netlist.Const v -> if live.(id) then map.(id) <- Netlist.const fresh v
    | Netlist.Gate (g, a, b) -> if live.(id) then map.(id) <- emit g map.(a) map.(b)
    | Netlist.Lut { table; ins } ->
      (* LUT cells pass through unchanged (inverter absorption belongs to
         the covering pass, which owns table polarity). *)
      if live.(id) then
        map.(id) <- Netlist.lut fresh ~table (Array.map (fun a -> map.(a)) ins)
  done;
  List.iter (fun (name, id) -> Netlist.mark_output fresh name map.(id)) (Netlist.outputs net);
  fresh

let optimize net =
  (* Two sweeps: inverter absorption in the first pass can orphan the NOT
     gates it folded away; the second pass removes them. *)
  let optimized = rebuild (rebuild net) in
  ( optimized,
    {
      gates_before = Netlist.gate_count net;
      gates_after = Netlist.gate_count optimized;
      bootstraps_before = Netlist.bootstrap_count net;
      bootstraps_after = Netlist.bootstrap_count optimized;
    } )

(* ------------------------------------------------------------------ *)
(* LUT covering                                                        *)
(* ------------------------------------------------------------------ *)

let max_lut_arity = 3
let cuts_per_node = 8

(* A cut is a sorted array of leaf ids; every path from the root to the
   primary inputs crosses the cut, so the root is a boolean function of
   the leaves alone. *)
let cut_key c =
  match c with
  | [| a |] -> (1, a, -1, -1)
  | [| a; b |] -> (2, a, b, -1)
  | [| a; b; c |] -> (3, a, b, c)
  | _ -> assert false

(* Sorted-unique union of two cuts; [None] past [max_lut_arity] leaves. *)
let merge_cut a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make max_lut_arity 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let ok = ref true in
  while !ok && (!i < la || !j < lb) do
    let v =
      if !i >= la then begin
        let v = b.(!j) in
        incr j; v
      end
      else if !j >= lb then begin
        let v = a.(!i) in
        incr i; v
      end
      else if a.(!i) < b.(!j) then begin
        let v = a.(!i) in
        incr i; v
      end
      else if a.(!i) > b.(!j) then begin
        let v = b.(!j) in
        incr j; v
      end
      else begin
        let v = a.(!i) in
        incr i; incr j; v
      end
    in
    if !k >= max_lut_arity then ok := false
    else begin
      out.(!k) <- v;
      incr k
    end
  done;
  if !ok then Some (Array.sub out 0 !k) else None

(* Bottom-up cut enumeration, [cuts_per_node] best (smallest first) kept
   per node.  NOT gates are transparent — their operand's cuts pass
   through, which is what lets table polarity absorb inverters for free.
   Inputs, constants and existing LUT cells are always leaves. *)
let enumerate_cuts net =
  let n = Netlist.node_count net in
  let cuts = Array.make n [] in
  for id = 0 to n - 1 do
    let merged =
      match Netlist.kind net id with
      | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> []
      | Netlist.Gate (g, a, _) when Gate.is_unary g -> cuts.(a)
      | Netlist.Gate (_, a, b) ->
        List.concat_map
          (fun ca -> List.filter_map (fun cb -> merge_cut ca cb) cuts.(b))
          cuts.(a)
    in
    let seen = Hashtbl.create 16 in
    let uniq =
      List.filter
        (fun c ->
          let k = cut_key c in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        merged
    in
    let sorted =
      List.sort
        (fun x y ->
          let c = compare (Array.length x) (Array.length y) in
          if c <> 0 then c else compare x y)
        uniq
    in
    let rec take n = function
      | [] -> []
      | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
    in
    cuts.(id) <- [| id |] :: take (cuts_per_node - 1) sorted
  done;
  cuts

(* The root's truth table over [leaves] (MSB-first: leaf 0 indexes the top
   message bit, matching [Netlist.lut]): plain cone simulation, one memo
   per input vector. *)
let cone_table net root leaves =
  let k = Array.length leaves in
  let leaf_pos id =
    let p = ref (-1) in
    Array.iteri (fun j l -> if l = id then p := j) leaves;
    !p
  in
  let table = ref 0 in
  for m = 0 to (1 lsl k) - 1 do
    let memo = Hashtbl.create 16 in
    let rec v id =
      let p = leaf_pos id in
      if p >= 0 then (m lsr (k - 1 - p)) land 1 = 1
      else
        match Hashtbl.find_opt memo id with
        | Some b -> b
        | None ->
          let b =
            match Netlist.kind net id with
            | Netlist.Const b -> b
            | Netlist.Gate (g, a, b') -> Gate.eval g (v a) (v b')
            | Netlist.Input _ | Netlist.Lut _ ->
              invalid_arg "Opt.lut_cover: cone escapes its cut"
          in
          Hashtbl.add memo id b;
          b
    in
    if v root then table := !table lor (1 lsl m)
  done;
  !table

let lut_cover net =
  let gates_before = Netlist.gate_count net in
  let bootstraps_before = Netlist.bootstrap_count net in
  (* Clean slate first — fold, CSE, inverter absorption and DCE — so the
     fan-out counts below reflect live structure only. *)
  let net = rebuild net in
  let n = Netlist.node_count net in
  let cuts = enumerate_cuts net in
  (* Live fan-out counts (references from gates, LUT cells and output
     marks).  The covering pass maintains them incrementally: a committed
     cover deletes its cone's exclusive interior. *)
  let uses = Array.make n 0 in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Gate (g, a, b) ->
      uses.(a) <- uses.(a) + 1;
      if not (Gate.is_unary g) then uses.(b) <- uses.(b) + 1
    | Netlist.Lut { ins; _ } -> Array.iter (fun a -> uses.(a) <- uses.(a) + 1) ins
    | Netlist.Input _ | Netlist.Const _ -> ()
  done;
  List.iter (fun (_, id) -> uses.(id) <- uses.(id) + 1) (Netlist.outputs net);
  let is_candidate id =
    match Netlist.kind net id with
    | Netlist.Gate (g, _, _) -> not (Gate.is_unary g)
    | _ -> false
  in
  (* cut key -> all candidate roots whose function is expressible over the
     cut's leaves.  Roots sharing a tuple ride one blind rotation, so they
     are covered together. *)
  let cut_roots = Hashtbl.create 256 in
  for id = 0 to n - 1 do
    if is_candidate id then
      List.iter
        (fun c ->
          if Array.length c >= 2 then begin
            let key = cut_key c in
            let prev = Option.value ~default:[] (Hashtbl.find_opt cut_roots key) in
            Hashtbl.replace cut_roots key (id :: prev)
          end)
        cuts.(id)
  done;
  let covered : int array option array = Array.make n None in
  let chosen_tuples = Hashtbl.create 64 in
  let reencoded = Hashtbl.create 64 in
  let is_lutdom id =
    covered.(id) <> None
    || (match Netlist.kind net id with Netlist.Lut _ -> true | _ -> false)
  in
  (* Tentatively cover every live uncovered root sharing cut [c]; the gain
     is the bootstrap balance: gates whose execution disappears (the roots
     plus their now-dead exclusive cone interior) against one blind
     rotation per new tuple plus one reencode per classic leaf not already
     converted.  Commits keep the fan-out decrements and register the
     cover; dry runs and losing bids roll back. *)
  let attempt c ~commit =
    if Array.exists (fun l -> uses.(l) <= 0) c then min_int
    else begin
      let key = cut_key c in
      let riders =
        Option.value ~default:[] (Hashtbl.find_opt cut_roots key)
        |> List.filter (fun r -> covered.(r) = None && uses.(r) > 0)
        |> List.sort_uniq compare
      in
      if riders = [] then min_int
      else begin
        let in_cut id = Array.exists (Int.equal id) c in
        let touched = Hashtbl.create 32 in
        let dec id =
          if not (Hashtbl.mem touched id) then Hashtbl.add touched id uses.(id);
          uses.(id) <- uses.(id) - 1;
          uses.(id) = 0
        in
        let rollback () = Hashtbl.iter (fun id u -> uses.(id) <- u) touched in
        let pushed = Hashtbl.create 32 in
        let stack = ref riders in
        List.iter (fun r -> Hashtbl.replace pushed r ()) riders;
        let saved = ref 0 in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | id :: tl ->
            stack := tl;
            (match Netlist.kind net id with
            | Netlist.Gate (g, a, b) ->
              if not (Gate.is_unary g) then incr saved;
              let ops = if Gate.is_unary g then [ a ] else [ a; b ] in
              List.iter
                (fun a ->
                  if not (in_cut a) then
                    if
                      dec a
                      && (not (Hashtbl.mem pushed a))
                      && covered.(a) = None
                      && match Netlist.kind net a with Netlist.Gate _ -> true | _ -> false
                    then begin
                      Hashtbl.replace pushed a ();
                      stack := a :: !stack
                    end)
                ops
            | Netlist.Input _ | Netlist.Const _ | Netlist.Lut _ -> assert false)
        done;
        (* Riders whose fan-outs all died in the cascade are cone-interior
           to the others: they need no cell of their own. *)
        let final_roots = List.filter (fun r -> uses.(r) > 0) riders in
        let new_reencodes =
          Array.fold_left
            (fun acc l ->
              if (not (is_lutdom l)) && not (Hashtbl.mem reencoded l) then acc + 1 else acc)
            0 c
        in
        let rotation = if Hashtbl.mem chosen_tuples key then 0 else 1 in
        let gain = !saved - rotation - new_reencodes in
        if commit && gain >= 0 && final_roots <> [] then begin
          Hashtbl.replace chosen_tuples key ();
          Array.iter
            (fun l ->
              if is_lutdom l then uses.(l) <- uses.(l) + List.length final_roots
              else if not (Hashtbl.mem reencoded l) then begin
                Hashtbl.add reencoded l ();
                uses.(l) <- uses.(l) + 1
              end
              else ())
            c;
          List.iter (fun r -> covered.(r) <- Some c) final_roots;
          gain
        end
        else begin
          rollback ();
          if final_roots = [] then min_int else gain
        end
      end
    end
  in
  for id = 0 to n - 1 do
    if is_candidate id && covered.(id) = None && uses.(id) > 0 then begin
      let best = ref None in
      List.iter
        (fun c ->
          if Array.length c >= 2 then begin
            let g = attempt c ~commit:false in
            match !best with
            | Some (bg, _) when bg >= g -> ()
            | Some _ | None -> if g >= 0 then best := Some (g, c)
          end)
        cuts.(id);
      match !best with
      | Some (_, c) -> ignore (attempt c ~commit:true)
      | None -> ()
    end
  done;
  (* Re-emit: covered roots become LUT cells over their (lutdom) leaves,
     classic leaves gain one shared reencode cell each, everything else
     passes through.  The final rebuild drops the cone interiors that lost
     their last fan-out. *)
  let fresh = Netlist.create ~hash_consing:true ~fold_constants:true () in
  let map = Array.make n (-1) in
  let input_names = Array.make n "" in
  List.iter (fun (name, id) -> input_names.(id) <- name) (Netlist.inputs net);
  let reenc = Hashtbl.create 32 in
  let lutdom_operand l =
    let m = map.(l) in
    if Netlist.is_lut fresh m then m
    else
      match Hashtbl.find_opt reenc m with
      | Some x -> x
      | None ->
        let x = Netlist.lut fresh ~table:0b10 [| m |] in
        Hashtbl.add reenc m x;
        x
  in
  for id = 0 to n - 1 do
    match covered.(id) with
    | Some c ->
      let table = cone_table net id c in
      map.(id) <- Netlist.lut fresh ~table (Array.map lutdom_operand c)
    | None -> (
      match Netlist.kind net id with
      | Netlist.Input _ -> map.(id) <- Netlist.input fresh input_names.(id)
      | Netlist.Const v -> map.(id) <- Netlist.const fresh v
      | Netlist.Gate (g, a, b) -> map.(id) <- Netlist.gate fresh g map.(a) map.(b)
      | Netlist.Lut { table; ins } ->
        map.(id) <- Netlist.lut fresh ~table (Array.map (fun a -> map.(a)) ins))
  done;
  List.iter (fun (name, id) -> Netlist.mark_output fresh name map.(id)) (Netlist.outputs net);
  let out = rebuild fresh in
  ( out,
    {
      gates_before;
      gates_after = Netlist.gate_count out;
      bootstraps_before;
      bootstraps_after = Netlist.bootstrap_count out;
    } )

let pp_report fmt r =
  let pct before after =
    if before = 0 then 0.0 else 100.0 *. float_of_int (before - after) /. float_of_int before
  in
  Format.fprintf fmt "gates %d -> %d (-%.1f%%), bootstraps %d -> %d (-%.1f%%)" r.gates_before
    r.gates_after
    (pct r.gates_before r.gates_after)
    r.bootstraps_before r.bootstraps_after
    (pct r.bootstraps_before r.bootstraps_after)

let equivalent ?(trials = 256) ?(seed = 0x51AC) a b =
  let n = Netlist.input_count a in
  if Netlist.input_count b <> n then false
  else if List.length (Netlist.outputs a) <> List.length (Netlist.outputs b) then false
  else begin
    let agree ins =
      List.map snd (Netlist.eval_outputs a ins) = List.map snd (Netlist.eval_outputs b ins)
    in
    if n <= 16 then
      let all = ref true in
      for v = 0 to (1 lsl n) - 1 do
        if !all then all := agree (Array.init n (fun i -> (v lsr i) land 1 = 1))
      done;
      !all
    else begin
      let rng = Pytfhe_util.Rng.create ~seed () in
      let all = ref true in
      for _ = 1 to trials do
        if !all then all := agree (Array.init n (fun _ -> Pytfhe_util.Rng.bool rng))
      done;
      !all
    end
  end
