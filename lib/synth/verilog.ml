module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | '[' | '.' -> Buffer.add_char b '_'
      | ']' -> ()
      | _ -> Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if s = "" || match s.[0] with '0' .. '9' -> true | _ -> false then "w_" ^ s else s

let expr_of_gate g a b =
  match g with
  | Gate.And -> Printf.sprintf "%s & %s" a b
  | Gate.Or -> Printf.sprintf "%s | %s" a b
  | Gate.Xor -> Printf.sprintf "%s ^ %s" a b
  | Gate.Nand -> Printf.sprintf "~(%s & %s)" a b
  | Gate.Nor -> Printf.sprintf "~(%s | %s)" a b
  | Gate.Xnor -> Printf.sprintf "~(%s ^ %s)" a b
  | Gate.Not -> Printf.sprintf "~%s" a
  | Gate.Andny -> Printf.sprintf "~%s & %s" a b
  | Gate.Andyn -> Printf.sprintf "%s & ~%s" a b
  | Gate.Orny -> Printf.sprintf "~%s | %s" a b
  | Gate.Oryn -> Printf.sprintf "%s | ~%s" a b

let export ?(module_name = "pytfhe_top") net =
  (* The structural-Verilog subset is the 2-input gate library; programmable
     LUT cells have no cell type there.  Export before covering, or not at
     all. *)
  if Netlist.has_luts net then
    invalid_arg "Verilog.export: netlist contains LUT cells (no Verilog cell type)";
  let buf = Buffer.create 4096 in
  let names = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  let assign_name id base =
    let candidate = sanitize base in
    let final =
      if Hashtbl.mem used candidate then Printf.sprintf "%s_%d" candidate id else candidate
    in
    Hashtbl.replace used final ();
    Hashtbl.replace names id final;
    final
  in
  let inputs = List.map (fun (name, id) -> (assign_name id name, id)) (Netlist.inputs net) in
  (* Outputs get their own ports driven by assigns from whatever node they
     alias, so output naming never clashes with internal wires. *)
  let outputs =
    List.map
      (fun (name, id) ->
        let port = sanitize ("out_" ^ name) in
        let port = if Hashtbl.mem used port then Printf.sprintf "%s_o%d" port id else port in
        Hashtbl.replace used port ();
        (port, id))
      (Netlist.outputs net)
  in
  Buffer.add_string buf (Printf.sprintf "module %s (\n" module_name);
  List.iter (fun (n, _) -> Buffer.add_string buf (Printf.sprintf "  input wire %s,\n" n)) inputs;
  let rec ports = function
    | [] -> ()
    | [ (n, _) ] -> Buffer.add_string buf (Printf.sprintf "  output wire %s\n" n)
    | (n, _) :: rest ->
      Buffer.add_string buf (Printf.sprintf "  output wire %s,\n" n);
      ports rest
  in
  ports outputs;
  Buffer.add_string buf ");\n";
  let node_ref id =
    match Hashtbl.find_opt names id with
    | Some n -> n
    | None -> (
      match Netlist.kind net id with
      | Netlist.Const false -> "1'b0"
      | Netlist.Const true -> "1'b1"
      | Netlist.Input _ | Netlist.Gate _ | Netlist.Lut _ -> Printf.sprintf "n%d" id)
  in
  Netlist.iter_gates net (fun id _ _ _ ->
      Buffer.add_string buf (Printf.sprintf "  wire n%d;\n" id));
  Netlist.iter_gates net (fun id g a b ->
      Buffer.add_string buf
        (Printf.sprintf "  assign n%d = %s;\n" id (expr_of_gate g (node_ref a) (node_ref b))));
  List.iter
    (fun (port, id) -> Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" port (node_ref id)))
    outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parse (structural subset)                                           *)
(* ------------------------------------------------------------------ *)

exception Parse_error of { line : int; message : string }

type token =
  | Ident of string
  | Const_bit of bool
  | Kw_module | Kw_endmodule | Kw_input | Kw_output | Kw_wire | Kw_assign
  | Lparen | Rparen | Comma | Semi | Equal | Amp | Bar | Caret | Tilde

let tokenize source =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length source in
  let fail message = raise (Parse_error { line = !line; message }) in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    let c = source.[!i] in
    (match c with
    | '\n' ->
      incr line;
      incr i
    | ' ' | '\t' | '\r' -> incr i
    | '/' when !i + 1 < n && source.[!i + 1] = '/' ->
      while !i < n && source.[!i] <> '\n' do
        incr i
      done
    | '(' -> push Lparen; incr i
    | ')' -> push Rparen; incr i
    | ',' -> push Comma; incr i
    | ';' -> push Semi; incr i
    | '=' -> push Equal; incr i
    | '&' -> push Amp; incr i
    | '|' -> push Bar; incr i
    | '^' -> push Caret; incr i
    | '~' -> push Tilde; incr i
    | '1' when !i + 3 < n && String.sub source !i 4 = "1'b0" ->
      push (Const_bit false);
      i := !i + 4
    | '1' when !i + 3 < n && String.sub source !i 4 = "1'b1" ->
      push (Const_bit true);
      i := !i + 4
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let start = !i in
      while
        !i < n
        && match source.[!i] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false
      do
        incr i
      done;
      let word = String.sub source start (!i - start) in
      push
        (match word with
        | "module" -> Kw_module
        | "endmodule" -> Kw_endmodule
        | "input" -> Kw_input
        | "output" -> Kw_output
        | "wire" -> Kw_wire
        | "assign" -> Kw_assign
        | _ -> Ident word)
    | _ -> fail (Printf.sprintf "unexpected character %C" c));
    ()
  done;
  List.rev !tokens

type parser_state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t
let line_of st = match st.toks with [] -> 0 | (_, l) :: _ -> l

let fail st message = raise (Parse_error { line = line_of st; message })

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t what =
  match st.toks with
  | (tok, _) :: rest when tok = t -> st.toks <- rest
  | _ -> fail st ("expected " ^ what)

let expect_ident st what =
  match st.toks with
  | (Ident name, _) :: rest ->
    st.toks <- rest;
    name
  | _ -> fail st ("expected identifier: " ^ what)

(* expression grammar (weakest first): or_expr := xor_expr (('|') xor_expr)*
   xor_expr := and_expr ('^' and_expr)* ; and_expr := unary ('&' unary)* ;
   unary := '~' unary | '(' or_expr ')' | ident | const *)
let parse_expr st net env =
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some id -> id
    | None -> fail st (Printf.sprintf "use of undeclared wire %s" name)
  in
  let rec or_expr () =
    let acc = ref (xor_expr ()) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some Bar ->
        advance st;
        acc := Netlist.gate net Gate.Or !acc (xor_expr ())
      | _ -> continue := false
    done;
    !acc
  and xor_expr () =
    let acc = ref (and_expr ()) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some Caret ->
        advance st;
        acc := Netlist.gate net Gate.Xor !acc (and_expr ())
      | _ -> continue := false
    done;
    !acc
  and and_expr () =
    let acc = ref (unary ()) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some Amp ->
        advance st;
        acc := Netlist.gate net Gate.And !acc (unary ())
      | _ -> continue := false
    done;
    !acc
  and unary () =
    match peek st with
    | Some Tilde ->
      advance st;
      Netlist.not_ net (unary ())
    | Some Lparen ->
      advance st;
      let e = or_expr () in
      expect st Rparen ")";
      e
    | Some (Ident name) ->
      advance st;
      lookup name
    | Some (Const_bit b) ->
      advance st;
      Netlist.const net b
    | _ -> fail st "expected an expression"
  in
  or_expr ()

let parse source =
  let st = { toks = tokenize source } in
  let net = Netlist.create () in
  let env : (string, Netlist.id) Hashtbl.t = Hashtbl.create 64 in
  let output_ports = ref [] in
  expect st Kw_module "module";
  let _module_name = expect_ident st "module name" in
  expect st Lparen "(";
  let parse_port () =
    match peek st with
    | Some Kw_input ->
      advance st;
      (match peek st with Some Kw_wire -> advance st | _ -> ());
      let name = expect_ident st "input port name" in
      Hashtbl.replace env name (Netlist.input net name)
    | Some Kw_output ->
      advance st;
      (match peek st with Some Kw_wire -> advance st | _ -> ());
      let name = expect_ident st "output port name" in
      output_ports := name :: !output_ports
    | _ -> fail st "expected input or output port declaration"
  in
  parse_port ();
  let continue = ref true in
  while !continue do
    match peek st with
    | Some Comma ->
      advance st;
      parse_port ()
    | _ -> continue := false
  done;
  expect st Rparen ")";
  expect st Semi ";";
  let body_done = ref false in
  while not !body_done do
    match peek st with
    | Some Kw_wire ->
      advance st;
      (* wire declarations only reserve names; drivers come from assigns *)
      let _name = expect_ident st "wire name" in
      let more = ref true in
      while !more do
        match peek st with
        | Some Comma ->
          advance st;
          ignore (expect_ident st "wire name")
        | _ -> more := false
      done;
      expect st Semi ";"
    | Some Kw_assign ->
      advance st;
      let lhs = expect_ident st "assign target" in
      expect st Equal "=";
      let id = parse_expr st net env in
      expect st Semi ";";
      if Hashtbl.mem env lhs && not (List.mem lhs !output_ports) then
        fail st (Printf.sprintf "wire %s assigned twice" lhs)
      else Hashtbl.replace env lhs id
    | Some Kw_endmodule ->
      advance st;
      body_done := true
    | Some _ -> fail st "expected wire, assign or endmodule"
    | None -> fail st "unexpected end of file"
  done;
  List.iter
    (fun name ->
      match Hashtbl.find_opt env name with
      | Some id -> Netlist.mark_output net name id
      | None -> raise (Parse_error { line = 0; message = "output port " ^ name ^ " is never driven" }))
    (List.rev !output_ports);
  net
