(** Iterative radix-2 complex FFT over split re/im float arrays.

    Twiddle factors and bit-reversal permutations are computed once per
    transform size and cached, so repeated transforms (the hot path of TFHE
    bootstrapping) only pay the butterfly cost.  Twiddles are stored
    stage-major: each butterfly stage reads its factors from a contiguous
    slice, so the inner loop streams both the data and the tables instead of
    striding.  The cache is domain-safe:
    lookups are lock-free snapshots, and publication uses compare-and-set,
    so transforms may run concurrently from several OCaml 5 domains.
    Call {!precompute} before fanning work out so no domain builds tables
    mid-flight. *)

val precompute : int -> unit
(** [precompute n] builds and caches the tables for [n]-point transforms
    ([n] must be a power of two).  Raises [Invalid_argument] otherwise. *)

val tables_ready : int -> bool
(** Whether the tables for [n]-point transforms are already cached. *)

val transform : re:float array -> im:float array -> invert:bool -> unit
(** [transform ~re ~im ~invert] replaces the complex vector [(re, im)] with
    its DFT ([invert = false], kernel e^{-2πi jk/n}) or inverse DFT
    ([invert = true], scaled by 1/n).  The length must be a power of two and
    [re] and [im] must have equal length.  Raises [Invalid_argument]
    otherwise. *)

val transform_bitrev : re:float array -> im:float array -> invert:bool -> unit
(** Like {!transform} but the caller promises the input is already in
    bit-reversed order (see {!bit_rev}), so the permutation pass is skipped.
    Producers that can scatter their writes — e.g. the negacyclic twist —
    fuse the reordering into their own single pass this way. *)

val bit_rev : int -> int array
(** [bit_rev n] is the cached bit-reversal permutation for [n]-point
    transforms ([n] must be a power of two): writing input element [i] at
    position [bit_rev n].(i) feeds {!transform_bitrev}.  The returned array
    is shared — do not mutate it. *)

val dft_naive : re:float array -> im:float array -> invert:bool -> float array * float array
(** Quadratic-time reference DFT used by the test suite to validate
    [transform].  Returns fresh arrays; the inputs are not modified. *)
