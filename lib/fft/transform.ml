(* The dispatch layer between parameter sets and the two polynomial
   transform backends.  Everything above Tgsw selects a transform through a
   [kind] carried in the parameter set; the evaluation-domain values are the
   [domain] sum so TGSW keys, workspaces and wire frames stay
   transform-generic with one constructor match at the point of use. *)

type kind = Fft | Ntt

type domain = Dfft of Negacyclic.spectrum | Dntt of Ntt.spectrum

let kind_name = function Fft -> "fft" | Ntt -> "ntt"

let kind_of_name = function
  | "fft" -> Some Fft
  | "ntt" -> Some Ntt
  | _ -> None

let kind_code = function Fft -> 0 | Ntt -> 1
let kind_of_code = function 0 -> Some Fft | 1 -> Some Ntt | _ -> None

let precompute kind n =
  match kind with Fft -> Negacyclic.precompute n | Ntt -> Ntt.precompute n

let tables_ready kind n =
  match kind with Fft -> Negacyclic.tables_ready n | Ntt -> Ntt.tables_ready n

let create kind n =
  match kind with
  | Fft -> Dfft (Negacyclic.spectrum_create n)
  | Ntt -> Dntt (Ntt.spectrum_create n)

let copy = function
  | Dfft s -> Dfft (Negacyclic.spectrum_copy s)
  | Dntt s -> Dntt (Ntt.spectrum_copy s)

let zero = function
  | Dfft s -> Negacyclic.spectrum_zero s
  | Dntt s -> Ntt.spectrum_zero s

let kind_of = function Dfft _ -> Fft | Dntt _ -> Ntt

(* Allocating forward of a signed integer polynomial — the key-generation
   path.  The FFT branch converts through floats exactly as the historical
   [Poly.to_floats ~centred:true] pipeline did, so FFT keysets are
   bit-identical to those produced before this layer existed. *)
let forward_signed kind (xs : int array) =
  match kind with
  | Fft -> Dfft (Negacyclic.forward (Array.map float_of_int xs))
  | Ntt -> Dntt (Ntt.forward xs)

let mul_add_into acc a b =
  match (acc, a, b) with
  | Dfft acc, Dfft a, Dfft b -> Negacyclic.mul_add_into acc a b
  | Dntt acc, Dntt a, Dntt b -> Ntt.mul_add_into acc a b
  | _ -> invalid_arg "Transform.mul_add_into: mixed transform domains"
