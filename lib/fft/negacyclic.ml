type spectrum = { s_re : float array; s_im : float array }

(* The folded representation: a real polynomial p of N coefficients is
   packed into N/2 complex values q_j = p_j + i·p_{j+N/2}, twisted by the
   2N-th root ω^j (ω = e^{iπ/N}), and transformed with an N/2-point FFT.
   The resulting bins are the evaluations of p at the odd 2N-th roots
   ω^{1−4k} — one representative per conjugate pair, which is exactly the
   information a negacyclic product needs.  Half the butterflies and half
   the memory of the naive N-point embedding. *)

type twist = { t_cos : float array; t_sin : float array }

(* Same lock-free snapshot/CAS scheme as [Complex_fft.table_cache]: worker
   domains read an immutable list, so the lazily-filled Hashtbl race is
   gone.  [precompute] populates both this cache and the FFT's twiddle
   tables before any domain enters the hot loop. *)
let twist_cache : (int * twist) list Atomic.t = Atomic.make []

let make_twist n =
  (* e^{iπ j / n} for j < n/2 *)
  let half = n / 2 in
  let t_cos = Array.make (max half 1) 0.0 in
  let t_sin = Array.make (max half 1) 0.0 in
  for j = 0 to half - 1 do
    let angle = Float.pi *. float_of_int j /. float_of_int n in
    t_cos.(j) <- cos angle;
    t_sin.(j) <- sin angle
  done;
  { t_cos; t_sin }

let rec assoc_size n = function
  | [] -> None
  | (m, t) :: rest -> if m = n then Some t else assoc_size n rest

let rec twist n =
  let snapshot = Atomic.get twist_cache in
  match assoc_size n snapshot with
  | Some t -> t
  | None ->
    let t = make_twist n in
    if Atomic.compare_and_set twist_cache snapshot ((n, t) :: snapshot) then t else twist n

let precompute n =
  if n < 2 || n land (n - 1) <> 0 then invalid_arg "Negacyclic.precompute";
  ignore (twist n);
  Complex_fft.precompute (n / 2)

let tables_ready n =
  assoc_size n (Atomic.get twist_cache) <> None && Complex_fft.tables_ready (n / 2)

let spectrum_create n =
  if n < 2 || n land (n - 1) <> 0 then invalid_arg "Negacyclic.spectrum_create";
  { s_re = Array.make (n / 2) 0.0; s_im = Array.make (n / 2) 0.0 }

let spectrum_copy s = { s_re = Array.copy s.s_re; s_im = Array.copy s.s_im }

let spectrum_zero s =
  Array.fill s.s_re 0 (Array.length s.s_re) 0.0;
  Array.fill s.s_im 0 (Array.length s.s_im) 0.0

let forward_into s p =
  let n = Array.length p in
  let half = n / 2 in
  if Array.length s.s_re <> half then invalid_arg "Negacyclic.forward_into: size mismatch";
  let t = twist n in
  if half = 1 then begin
    s.s_re.(0) <- (p.(0) *. t.t_cos.(0)) -. (p.(1) *. t.t_sin.(0));
    s.s_im.(0) <- (p.(0) *. t.t_sin.(0)) +. (p.(1) *. t.t_cos.(0))
  end
  else begin
    (* The twist multiply is fused with the FFT's first (bit-reversal)
       stage: each twisted value is scattered straight to its permuted
       slot, saving a full read/write pass over both float arrays. *)
    let rev = Complex_fft.bit_rev half in
    for j = 0 to half - 1 do
      (* (p_j + i p_{j+half}) · e^{iπ j/n} *)
      let re = Array.unsafe_get p j in
      let im = Array.unsafe_get p (j + half) in
      let c = Array.unsafe_get t.t_cos j and sn = Array.unsafe_get t.t_sin j in
      let r = Array.unsafe_get rev j in
      Array.unsafe_set s.s_re r ((re *. c) -. (im *. sn));
      Array.unsafe_set s.s_im r ((re *. sn) +. (im *. c))
    done;
    Complex_fft.transform_bitrev ~re:s.s_re ~im:s.s_im ~invert:false
  end

let forward p =
  let s = spectrum_create (Array.length p) in
  forward_into s p;
  s

let backward_into p s =
  let n = Array.length p in
  let half = n / 2 in
  if Array.length s.s_re <> half then invalid_arg "Negacyclic.backward_into: size mismatch";
  Complex_fft.transform ~re:s.s_re ~im:s.s_im ~invert:true;
  let t = twist n in
  (* Untwist by e^{-iπ j/n} and unfold the complex packing. *)
  for j = 0 to half - 1 do
    let re = Array.unsafe_get s.s_re j and im = Array.unsafe_get s.s_im j in
    let c = Array.unsafe_get t.t_cos j and sn = Array.unsafe_get t.t_sin j in
    Array.unsafe_set p j ((re *. c) +. (im *. sn));
    Array.unsafe_set p (j + half) ((im *. c) -. (re *. sn))
  done

let backward s =
  let p = Array.make (2 * Array.length s.s_re) 0.0 in
  backward_into p (spectrum_copy s);
  p

let mul_add_into acc a b =
  let n = Array.length acc.s_re in
  for j = 0 to n - 1 do
    let ar = Array.unsafe_get a.s_re j and ai = Array.unsafe_get a.s_im j in
    let br = Array.unsafe_get b.s_re j and bi = Array.unsafe_get b.s_im j in
    Array.unsafe_set acc.s_re j (Array.unsafe_get acc.s_re j +. ((ar *. br) -. (ai *. bi)));
    Array.unsafe_set acc.s_im j (Array.unsafe_get acc.s_im j +. ((ar *. bi) +. (ai *. br)))
  done

let polymul a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Negacyclic.polymul: size mismatch";
  let sa = forward a in
  let sb = forward b in
  let acc = spectrum_create n in
  mul_add_into acc sa sb;
  let p = Array.make n 0.0 in
  backward_into p acc;
  p

let polymul_naive a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Negacyclic.polymul_naive: size mismatch";
  let c = Array.make n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let k = i + j in
      if k < n then c.(k) <- c.(k) +. (a.(i) *. b.(j))
      else c.(k - n) <- c.(k - n) -. (a.(i) *. b.(j))
    done
  done;
  c
