(** Exact negacyclic polynomial products: ℤ[X]/(Xᴺ + 1) via a double-prime
    NTT with CRT recombination.

    The integer analogue of {!Negacyclic}: same [precompute] /
    [spectrum] / allocation-free [_into] shape, same destructive-inverse
    contract — but every product is {e exact} as long as the true result
    coefficients stay within ±{!modulus}/2 (≈ ±2⁵⁸·⁸), which the TFHE
    gadget bounds guarantee with > 2⁸ headroom at default-128.  Exactness
    makes blind rotation bit-identical across machines and across the
    scalar/batched/SoA paths by construction.

    Two ~30-bit primes (998244353 and 1004535809, both with primitive root
    3) are used instead of one 64-bit prime so every butterfly product and
    CRT intermediate fits OCaml's 63-bit native int — no Int64 boxing, no
    multiply-high emulation.  The trade-off (two transforms per direction
    versus one) is discussed in docs/perf.md.

    The twiddle/root table cache is domain-safe: lookups never lock, and
    {!precompute} fills it for a ring degree up front so worker domains
    running transforms concurrently never build tables mid-flight. *)

val p1 : int
val p2 : int

val modulus : int
(** p1·p2 ≈ 2⁵⁹·⁸ — products are exact while |coefficient| ≤ [modulus]/2. *)

val precompute : int -> unit
(** [precompute n] builds the ψ/twiddle tables for degree-[n] polynomials
    ([n] a power of two, 2 ≤ [n] ≤ 2²⁰ from the primes' 2-adicity).
    Raises [Invalid_argument] otherwise. *)

val tables_ready : int -> bool
(** Whether the tables for ring degree [n] are already cached. *)

val builds : unit -> int
(** Monotone count of table constructions in this process.  A correctly
    precomputed steady state keeps it flat — the regression tests assert a
    parallel run never bumps it. *)

type spectrum = { v1 : int array; v2 : int array }
(** Evaluation-domain representation: residues at the odd 2N-th roots of
    unity modulo each prime ([v1] mod {!p1}, [v2] mod {!p2}), length N. *)

val spectrum_create : int -> spectrum
val spectrum_copy : spectrum -> spectrum
val spectrum_zero : spectrum -> unit

val forward_into : spectrum -> int array -> unit
(** [forward_into s p] transforms the {e signed} integer polynomial [p]
    (any values; they are reduced per prime) into [s]. *)

val forward : int array -> spectrum

val backward_into : int array -> spectrum -> unit
(** [backward_into p s] writes the signed, centred CRT lift of the inverse
    transform into [p]: exact integer coefficients in
    (−{!modulus}/2, {!modulus}/2].

    {b Destructive:} the inverse runs in place on [s]'s arrays — after the
    call [s] is garbage scratch, exactly like
    {!Negacyclic.backward_into}. *)

val backward : spectrum -> int array
(** Allocating, non-destructive variant. *)

val mul_add_into : spectrum -> spectrum -> spectrum -> unit
(** [mul_add_into acc a b] accumulates the pointwise product [a·b] into
    [acc] modulo each prime. *)

val polymul : int array -> int array -> int array
(** Exact negacyclic product of signed integer polynomials (exact while
    the true result fits in ±{!modulus}/2). *)

val polymul_naive : int array -> int array -> int array
(** Schoolbook reference in native int arithmetic, O(N²); the caller keeps
    inputs small enough that coefficient sums do not overflow 63 bits. *)
