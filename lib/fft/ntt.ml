(* Exact negacyclic convolution over ℤ[X]/(Xᴺ + 1) via a double-prime
   number-theoretic transform.

   The coefficient arithmetic TFHE needs is integer products of
   gadget-decomposition digits (|d| ≤ Bg/2) with centred torus words
   (|t| < 2³¹), accumulated over (k+1)·l rows — magnitudes up to about
   rows·N·(Bg/2)·2³¹ ≈ 2⁵⁰ for the default-128 set.  OCaml's native int is
   63-bit, so instead of one 64-bit prime (whose butterflies would need
   Int64 or 128-bit multiply-high tricks) we run the transform twice over
   two ~30-bit NTT-friendly primes and recombine by CRT:

     p1 = 998244353  = 119·2²³ + 1   (primitive root 3)
     p2 = 1004535809 = 479·2²¹ + 1   (primitive root 3)

   Every butterfly product is < 2⁶⁰ and every CRT intermediate is
   < p1·p2 ≈ 2⁵⁹·⁸, so all arithmetic stays in native ints with no boxing.
   The combined modulus M = p1·p2 leaves > 2⁸ headroom over the worst-case
   product magnitude above, making the negacyclic product — and therefore
   the whole blind rotation — exact, bit-identical across machines.

   Shape mirrors {!Negacyclic}: a 2N-th root ψ twists the input (fused into
   the bit-reversal scatter), an N-point cyclic NTT evaluates it, and the
   inverse untwists by N⁻¹·ψ⁻ʲ.  The table cache is the same lock-free
   snapshot/CAS scheme, with {!precompute} to fill it before worker domains
   run transforms concurrently; {!builds} counts table constructions so
   tests can assert none happen mid-flight. *)

let p1 = 998244353
let p2 = 1004535809
let modulus = p1 * p2

let[@inline] pow_mod b e p =
  let b = ref (b mod p) and e = ref e and acc = ref 1 in
  while !e > 0 do
    if !e land 1 = 1 then acc := !acc * !b mod p;
    b := !b * !b mod p;
    e := !e asr 1
  done;
  !acc

type prime_ctx = {
  cp : int;  (* the prime *)
  psi : int array;  (* ψʲ, fused into the forward bit-reversal scatter *)
  inv_psi_n : int array;  (* N⁻¹·ψ⁻ʲ, fused into the inverse untwist pass *)
  w_fwd : int array;  (* stage-major twiddles: slot half+j holds ω_len^j *)
  w_inv : int array;
}

type tables = { t_n : int; rev : int array; c1 : prime_ctx; c2 : prime_ctx }

let make_prime_ctx p n =
  (* g = 3 is a primitive root of both primes. *)
  let psi_root = pow_mod 3 ((p - 1) / (2 * n)) p in
  let w = psi_root * psi_root mod p in
  let inv_psi = pow_mod psi_root (p - 2) p in
  let n_inv = pow_mod n (p - 2) p in
  let psi = Array.make n 1 and inv_psi_n = Array.make n n_inv in
  for j = 1 to n - 1 do
    psi.(j) <- psi.(j - 1) * psi_root mod p;
    inv_psi_n.(j) <- inv_psi_n.(j - 1) * inv_psi mod p
  done;
  let fill root =
    let tw = Array.make n 0 in
    let half = ref 1 in
    while !half < n do
      let w_len = pow_mod root (n / (2 * !half)) p in
      tw.(!half) <- 1;
      for j = 1 to !half - 1 do
        tw.(!half + j) <- tw.(!half + j - 1) * w_len mod p
      done;
      half := !half * 2
    done;
    tw
  in
  { cp = p; psi; inv_psi_n; w_fwd = fill w; w_inv = fill (pow_mod w (p - 2) p) }

let make_tables n =
  let rev = Array.make n 0 in
  let bits =
    let b = ref 0 and v = ref n in
    while !v > 1 do
      incr b;
      v := !v lsr 1
    done;
    !b
  in
  for i = 0 to n - 1 do
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    rev.(i) <- !r
  done;
  { t_n = n; rev; c1 = make_prime_ctx p1 n; c2 = make_prime_ctx p2 n }

(* Lock-free table cache: worker domains read an immutable snapshot list,
   so the lazily-filled-Hashtbl race of a naive cache cannot happen.  The
   build counter is bumped on every table construction — a precomputed
   steady state must keep it flat. *)
let cache : (int * tables) list Atomic.t = Atomic.make []
let builds_counter = Atomic.make 0

let rec assoc_size n = function
  | [] -> None
  | (m, t) :: rest -> if m = n then Some t else assoc_size n rest

let check_degree who n =
  if n < 2 || n land (n - 1) <> 0 then invalid_arg who;
  (* 2N must divide p−1 for both primes; p2 = 479·2²¹ + 1 is the binding
     one, so the largest supported ring degree is 2²⁰. *)
  if 2 * n > 1 lsl 21 then invalid_arg (who ^ ": ring degree exceeds the NTT prime 2-adicity")

let rec tables n =
  let snapshot = Atomic.get cache in
  match assoc_size n snapshot with
  | Some t -> t
  | None ->
    check_degree "Ntt.tables" n;
    Atomic.incr builds_counter;
    let t = make_tables n in
    if Atomic.compare_and_set cache snapshot ((n, t) :: snapshot) then t else tables n

let precompute n =
  check_degree "Ntt.precompute" n;
  ignore (tables n)

let tables_ready n = assoc_size n (Atomic.get cache) <> None
let builds () = Atomic.get builds_counter

type spectrum = { v1 : int array; v2 : int array }

let spectrum_create n =
  check_degree "Ntt.spectrum_create" n;
  { v1 = Array.make n 0; v2 = Array.make n 0 }

let spectrum_copy s = { v1 = Array.copy s.v1; v2 = Array.copy s.v2 }

let spectrum_zero s =
  Array.fill s.v1 0 (Array.length s.v1) 0;
  Array.fill s.v2 0 (Array.length s.v2) 0

(* Decimation-in-time butterflies over input already in bit-reversed
   order; lazy reduction keeps one [mod] per butterfly (the multiply),
   additions use conditional subtraction. *)
let ntt_bitrev (a : int array) (tw : int array) p n =
  let len = ref 2 in
  while !len <= n do
    let half = !len asr 1 in
    let i = ref 0 in
    while !i < n do
      let base = !i in
      for j = 0 to half - 1 do
        let u = Array.unsafe_get a (base + j) in
        let v =
          Array.unsafe_get a (base + j + half) * Array.unsafe_get tw (half + j) mod p
        in
        let x = u + v in
        Array.unsafe_set a (base + j) (if x >= p then x - p else x);
        let y = u - v in
        Array.unsafe_set a (base + j + half) (if y < 0 then y + p else y)
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done

let forward_into s (xs : int array) =
  let n = Array.length xs in
  if Array.length s.v1 <> n then invalid_arg "Ntt.forward_into: size mismatch";
  let t = tables n in
  let rev = t.rev in
  let scatter (c : prime_ctx) (a : int array) =
    let p = c.cp in
    for j = 0 to n - 1 do
      let r = Array.unsafe_get xs j mod p in
      let r = if r < 0 then r + p else r in
      Array.unsafe_set a (Array.unsafe_get rev j) (r * Array.unsafe_get c.psi j mod p)
    done;
    ntt_bitrev a c.w_fwd p n
  in
  scatter t.c1 s.v1;
  scatter t.c2 s.v2

let forward xs =
  let s = spectrum_create (Array.length xs) in
  forward_into s xs;
  s

(* Centred CRT lift: x ≡ c1 (mod p1), x ≡ c2 (mod p2), |x| ≤ M/2. *)
let inv_p1_mod_p2 = pow_mod (p1 mod p2) (p2 - 2) p2

let backward_into (out : int array) s =
  let n = Array.length out in
  if Array.length s.v1 <> n then invalid_arg "Ntt.backward_into: size mismatch";
  let t = tables n in
  let rev = t.rev in
  let inverse (c : prime_ctx) (a : int array) =
    (* Natural order in, so permute in place before the butterflies: the
       spectrum arrays become scratch — the documented destructive
       contract, shared with [Negacyclic.backward_into]. *)
    for i = 0 to n - 1 do
      let r = Array.unsafe_get rev i in
      if i < r then begin
        let tmp = Array.unsafe_get a i in
        Array.unsafe_set a i (Array.unsafe_get a r);
        Array.unsafe_set a r tmp
      end
    done;
    ntt_bitrev a c.w_inv c.cp n
  in
  inverse t.c1 s.v1;
  inverse t.c2 s.v2;
  let u1 = t.c1.inv_psi_n and u2 = t.c2.inv_psi_n in
  for j = 0 to n - 1 do
    let c1 = Array.unsafe_get s.v1 j * Array.unsafe_get u1 j mod p1 in
    let c2 = Array.unsafe_get s.v2 j * Array.unsafe_get u2 j mod p2 in
    let d = (c2 - c1) mod p2 in
    let d = if d < 0 then d + p2 else d in
    let x = c1 + (p1 * (d * inv_p1_mod_p2 mod p2)) in
    Array.unsafe_set out j (if 2 * x > modulus then x - modulus else x)
  done

let backward s =
  let out = Array.make (Array.length s.v1) 0 in
  backward_into out (spectrum_copy s);
  out

let mul_add_into acc a b =
  let n = Array.length acc.v1 in
  for j = 0 to n - 1 do
    Array.unsafe_set acc.v1 j
      ((Array.unsafe_get acc.v1 j
       + (Array.unsafe_get a.v1 j * Array.unsafe_get b.v1 j))
      mod p1);
    Array.unsafe_set acc.v2 j
      ((Array.unsafe_get acc.v2 j
       + (Array.unsafe_get a.v2 j * Array.unsafe_get b.v2 j))
      mod p2)
  done

let polymul a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Ntt.polymul: size mismatch";
  let sa = forward a and sb = forward b in
  let acc = spectrum_create n in
  mul_add_into acc sa sb;
  let out = Array.make n 0 in
  backward_into out acc;
  out

let polymul_naive a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Ntt.polymul_naive: size mismatch";
  let c = Array.make n 0 in
  for i = 0 to n - 1 do
    let ai = a.(i) in
    if ai <> 0 then
      for j = 0 to n - 1 do
        let k = i + j in
        if k < n then c.(k) <- c.(k) + (ai * b.(j)) else c.(k - n) <- c.(k - n) - (ai * b.(j))
      done
  done;
  c
