(** Negacyclic polynomial convolution: products in ℝ[X]/(Xᴺ + 1).

    TFHE multiplies small-integer polynomials (gadget-decomposition digits)
    with torus polynomials modulo Xᴺ + 1.  We realise this with the classic
    twisting trick: multiply coefficient j by ωʲ where ω = e^{iπ/N} is a
    primitive 2N-th root of unity, take an N-point cyclic FFT, multiply
    pointwise, invert, and untwist.  All buffers are caller-provided in the
    [_into] variants so the bootstrapping hot loop allocates nothing.

    The trigonometric twist cache (and the underlying FFT twiddle cache) is
    domain-safe: lookups never lock, and {!precompute} fills both caches for
    a ring degree up front so worker domains running transforms concurrently
    never build tables mid-flight. *)

type spectrum = { s_re : float array; s_im : float array }
(** Frequency-domain representation of a real polynomial of degree < N. *)

val precompute : int -> unit
(** [precompute n] builds the twist table for degree-[n] polynomials and the
    twiddle tables of the underlying [n/2]-point FFT ([n] must be a power of
    two ≥ 2).  Raises [Invalid_argument] otherwise. *)

val tables_ready : int -> bool
(** Whether the twist and twiddle tables for degree-[n] polynomials are
    already cached. *)

val spectrum_create : int -> spectrum
(** [spectrum_create n] allocates a zero spectrum for polynomials of
    [n] coefficients ([n] must be a power of two). *)

val spectrum_copy : spectrum -> spectrum
(** Deep copy. *)

val spectrum_zero : spectrum -> unit
(** Reset all bins to zero. *)

val forward_into : spectrum -> float array -> unit
(** [forward_into s p] writes the twisted FFT of polynomial [p] into [s]. *)

val forward : float array -> spectrum
(** Allocating variant of {!forward_into}. *)

val backward_into : float array -> spectrum -> unit
(** [backward_into p s] writes the polynomial whose spectrum is [s] into
    [p].

    {b Destructive:} the inverse transform runs in place on [s]'s arrays, so
    after the call [s] no longer holds the spectrum — it is garbage scratch.
    A caller that needs the spectral values again (e.g. a batched kernel
    reusing spectra across gates) must either use the defensively-copying
    {!backward} or {!spectrum_copy} the spectrum first.  The [Tgsw] hot path
    is safe only because [Tgsw.product_spectra] fully recomputes its
    accumulator spectra on every call. *)

val backward : spectrum -> float array
(** Allocating variant of {!backward_into}; copies the spectrum first, so
    [s] is preserved (non-destructive). *)

val mul_add_into : spectrum -> spectrum -> spectrum -> unit
(** [mul_add_into acc a b] accumulates the pointwise product [a · b] into
    [acc]: the spectral form of fused multiply-add of polynomials. *)

val polymul : float array -> float array -> float array
(** [polymul a b] is the negacyclic product [a · b mod Xᴺ + 1] computed via
    the FFT path.  Arrays must share a power-of-two length. *)

val polymul_naive : float array -> float array -> float array
(** Schoolbook negacyclic product, O(N²); the reference for tests. *)
