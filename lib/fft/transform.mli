(** Transform selection and dispatch.

    TFHE's polynomial products run either through the double-precision
    complex FFT ({!Negacyclic} — fast, machine-dependent rounding) or the
    exact double-prime integer NTT ({!Ntt} — bit-reproducible).  The choice
    is a per-parameter-set {!kind}; evaluation-domain values are the
    {!domain} sum so the layers above (TGSW keys, workspaces, wire frames)
    carry one type regardless of the backend and dispatch with a single
    constructor match. *)

type kind = Fft | Ntt

type domain = Dfft of Negacyclic.spectrum | Dntt of Ntt.spectrum
(** One transformed polynomial, in whichever evaluation domain the
    parameter set selected. *)

val kind_name : kind -> string
(** ["fft"] / ["ntt"] — the CLI and wire spelling. *)

val kind_of_name : string -> kind option

val kind_code : kind -> int
(** Stable one-byte wire encoding: 0 = FFT, 1 = NTT. *)

val kind_of_code : int -> kind option

val precompute : kind -> int -> unit
(** Build the selected backend's tables for a ring degree, before worker
    domains or processes run transforms concurrently (see
    {!Negacyclic.precompute} / {!Ntt.precompute}). *)

val tables_ready : kind -> int -> bool

val create : kind -> int -> domain
(** A zeroed evaluation-domain value for degree-[n] polynomials. *)

val copy : domain -> domain
val zero : domain -> unit

val kind_of : domain -> kind

val forward_signed : kind -> int array -> domain
(** Allocating forward transform of a signed integer polynomial (gadget
    digits or centred torus words); the key-generation entry point. *)

val mul_add_into : domain -> domain -> domain -> unit
(** Pointwise fused multiply-accumulate; raises [Invalid_argument] when
    the three domains do not share a backend. *)
