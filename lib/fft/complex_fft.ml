type tables = {
  rev : int array;
  st_cos : float array;  (* stage-major twiddles: stage for length len=2^(s+1)
                            stores its len/2 factors contiguously, so the
                            butterfly inner loop walks both the data and the
                            twiddles sequentially. *)
  st_sin : float array;
  st_off : int array;  (* offset of stage s inside st_cos/st_sin *)
}

(* Per-size twiddle/bit-reversal tables.  The cache is an immutable
   association list behind an [Atomic]: readers take a lock-free snapshot,
   and a miss publishes freshly built tables with compare-and-set.  Worker
   domains therefore never observe a partially built entry — unlike the
   Hashtbl this replaces, which was unsafe to mutate mid-bootstrap from
   several domains at once. *)
let table_cache : (int * tables) list Atomic.t = Atomic.make []

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make_tables n =
  let rev = Array.make n 0 in
  let bits =
    let rec count b m = if m = 1 then b else count (b + 1) (m lsr 1) in
    count 0 n
  in
  for i = 0 to n - 1 do
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    rev.(i) <- !r
  done;
  (* Stage s covers butterflies of span len = 2^{s+1}; its j-th twiddle is
     e^{2πi·j·(n/len)/n}, the same angle the strided lookup used to read at
     index j·step, so the numerical values are bit-identical to the old
     layout — only the memory order changed. *)
  let st_cos = Array.make (max (n - 1) 1) 0.0 in
  let st_sin = Array.make (max (n - 1) 1) 0.0 in
  let st_off = Array.make (max bits 1) 0 in
  let off = ref 0 in
  for s = 0 to bits - 1 do
    st_off.(s) <- !off;
    let len = 1 lsl (s + 1) in
    let half = len / 2 in
    let step = n / len in
    for j = 0 to half - 1 do
      let angle = 2.0 *. Float.pi *. float_of_int (j * step) /. float_of_int n in
      st_cos.(!off + j) <- cos angle;
      st_sin.(!off + j) <- sin angle
    done;
    off := !off + half
  done;
  { rev; st_cos; st_sin; st_off }

let rec assoc_size n = function
  | [] -> None
  | (m, t) :: rest -> if m = n then Some t else assoc_size n rest

let rec tables n =
  let snapshot = Atomic.get table_cache in
  match assoc_size n snapshot with
  | Some t -> t
  | None ->
    let t = make_tables n in
    if Atomic.compare_and_set table_cache snapshot ((n, t) :: snapshot) then t else tables n

let precompute n =
  if not (is_power_of_two n) then invalid_arg "Complex_fft.precompute: length not a power of two";
  if n > 1 then ignore (tables n)

let tables_ready n = n <= 1 || assoc_size n (Atomic.get table_cache) <> None

let bit_rev n =
  if not (is_power_of_two n) then invalid_arg "Complex_fft.bit_rev: length not a power of two";
  (tables n).rev

let check_lengths name ~re ~im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg (name ^ ": length mismatch");
  if not (is_power_of_two n) then invalid_arg (name ^ ": length not a power of two");
  n

(* The butterfly passes shared by both entry points: the input is expected
   to already be in bit-reversed order. *)
let butterflies t ~re ~im ~invert n =
  let sign = if invert then 1.0 else -1.0 in
  let stage = ref 0 in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let off = t.st_off.(!stage) in
    let base = ref 0 in
    while !base < n do
      for j = 0 to half - 1 do
        let wr = Array.unsafe_get t.st_cos (off + j) in
        let wi = sign *. Array.unsafe_get t.st_sin (off + j) in
        let a = !base + j in
        let b = a + half in
        let xr = Array.unsafe_get re b and xi = Array.unsafe_get im b in
        let vr = (xr *. wr) -. (xi *. wi) in
        let vi = (xr *. wi) +. (xi *. wr) in
        let ur = Array.unsafe_get re a and ui = Array.unsafe_get im a in
        Array.unsafe_set re a (ur +. vr);
        Array.unsafe_set im a (ui +. vi);
        Array.unsafe_set re b (ur -. vr);
        Array.unsafe_set im b (ui -. vi)
      done;
      base := !base + !len
    done;
    incr stage;
    len := !len * 2
  done;
  if invert then begin
    let scale = 1.0 /. float_of_int n in
    for i = 0 to n - 1 do
      Array.unsafe_set re i (Array.unsafe_get re i *. scale);
      Array.unsafe_set im i (Array.unsafe_get im i *. scale)
    done
  end

let transform ~re ~im ~invert =
  let n = check_lengths "Complex_fft.transform" ~re ~im in
  if n = 1 then ()
  else begin
    let t = tables n in
    for i = 0 to n - 1 do
      let j = t.rev.(i) in
      if i < j then begin
        let tr = re.(i) in
        re.(i) <- re.(j);
        re.(j) <- tr;
        let ti = im.(i) in
        im.(i) <- im.(j);
        im.(j) <- ti
      end
    done;
    butterflies t ~re ~im ~invert n
  end

let transform_bitrev ~re ~im ~invert =
  let n = check_lengths "Complex_fft.transform_bitrev" ~re ~im in
  if n = 1 then () else butterflies (tables n) ~re ~im ~invert n

let dft_naive ~re ~im ~invert =
  let n = Array.length re in
  let out_re = Array.make n 0.0 in
  let out_im = Array.make n 0.0 in
  let sign = if invert then 1.0 else -1.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for j = 0 to n - 1 do
      let angle = sign *. 2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int n in
      let c = cos angle and s = sin angle in
      sr := !sr +. (re.(j) *. c) -. (im.(j) *. s);
      si := !si +. (re.(j) *. s) +. (im.(j) *. c)
    done;
    let scale = if invert then 1.0 /. float_of_int n else 1.0 in
    out_re.(k) <- !sr *. scale;
    out_im.(k) <- !si *. scale
  done;
  (out_re, out_im)
