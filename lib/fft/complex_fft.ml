type tables = { cos : float array; sin : float array; rev : int array }

(* Per-size twiddle/bit-reversal tables.  The cache is an immutable
   association list behind an [Atomic]: readers take a lock-free snapshot,
   and a miss publishes freshly built tables with compare-and-set.  Worker
   domains therefore never observe a partially built entry — unlike the
   Hashtbl this replaces, which was unsafe to mutate mid-bootstrap from
   several domains at once. *)
let table_cache : (int * tables) list Atomic.t = Atomic.make []

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make_tables n =
  let half = n / 2 in
  let cos_t = Array.make (max half 1) 0.0 in
  let sin_t = Array.make (max half 1) 0.0 in
  for k = 0 to half - 1 do
    let angle = 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    cos_t.(k) <- cos angle;
    sin_t.(k) <- sin angle
  done;
  let rev = Array.make n 0 in
  let bits =
    let rec count b m = if m = 1 then b else count (b + 1) (m lsr 1) in
    count 0 n
  in
  for i = 0 to n - 1 do
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    rev.(i) <- !r
  done;
  { cos = cos_t; sin = sin_t; rev }

let rec assoc_size n = function
  | [] -> None
  | (m, t) :: rest -> if m = n then Some t else assoc_size n rest

let rec tables n =
  let snapshot = Atomic.get table_cache in
  match assoc_size n snapshot with
  | Some t -> t
  | None ->
    let t = make_tables n in
    if Atomic.compare_and_set table_cache snapshot ((n, t) :: snapshot) then t else tables n

let precompute n =
  if not (is_power_of_two n) then invalid_arg "Complex_fft.precompute: length not a power of two";
  if n > 1 then ignore (tables n)

let transform ~re ~im ~invert =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Complex_fft.transform: length mismatch";
  if not (is_power_of_two n) then invalid_arg "Complex_fft.transform: length not a power of two";
  if n = 1 then ()
  else begin
    let t = tables n in
    for i = 0 to n - 1 do
      let j = t.rev.(i) in
      if i < j then begin
        let tr = re.(i) in
        re.(i) <- re.(j);
        re.(j) <- tr;
        let ti = im.(i) in
        im.(i) <- im.(j);
        im.(j) <- ti
      end
    done;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let step = n / !len in
      let base = ref 0 in
      while !base < n do
        for j = 0 to half - 1 do
          let k = j * step in
          let wr = t.cos.(k) in
          let wi = if invert then t.sin.(k) else -.t.sin.(k) in
          let a = !base + j in
          let b = a + half in
          let xr = re.(b) and xi = im.(b) in
          let vr = (xr *. wr) -. (xi *. wi) in
          let vi = (xr *. wi) +. (xi *. wr) in
          let ur = re.(a) and ui = im.(a) in
          re.(a) <- ur +. vr;
          im.(a) <- ui +. vi;
          re.(b) <- ur -. vr;
          im.(b) <- ui -. vi
        done;
        base := !base + !len
      done;
      len := !len * 2
    done;
    if invert then begin
      let scale = 1.0 /. float_of_int n in
      for i = 0 to n - 1 do
        re.(i) <- re.(i) *. scale;
        im.(i) <- im.(i) *. scale
      done
    end
  end

let dft_naive ~re ~im ~invert =
  let n = Array.length re in
  let out_re = Array.make n 0.0 in
  let out_im = Array.make n 0.0 in
  let sign = if invert then 1.0 else -1.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for j = 0 to n - 1 do
      let angle = sign *. 2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int n in
      let c = cos angle and s = sin angle in
      sr := !sr +. (re.(j) *. c) -. (im.(j) *. s);
      si := !si +. (re.(j) *. s) +. (im.(j) *. c)
    done;
    let scale = if invert then 1.0 /. float_of_int n else 1.0 in
    out_re.(k) <- !sr *. scale;
    out_im.(k) <- !si *. scale
  done;
  (out_re, out_im)
