(* A private database query, end to end on real ciphertexts.

     dune exec examples/private_query.exe

   The scenario of the paper's Fig. 1, instantiated: a client holds a tiny
   expense table (amounts + category tags) and wants the total spent in one
   category, computed by an untrusted server.  Everything the server touches
   — the amounts, the tags, the queried category, the result — is
   encrypted; it runs the compiled filtered_query circuit gate by gate with
   only the cloud keyset. *)

module W = Pytfhe_vipbench.Workload
open Pytfhe_core

let () =
  Format.printf "= Private database query (real TFHE execution) =@.";
  let workload = Option.get (Pytfhe_vipbench.Suite.find "filtered_query") in
  let compiled = Pipeline.compile_workload workload in
  Format.printf "%a@." Pipeline.pp_summary compiled;

  (* The filtered_query circuit: 16 records of UInt(8) amount + UInt(3)
     category, plus a UInt(3) query category; output is a UInt(12) sum. *)
  let amounts = [| 12; 5; 30; 7; 45; 3; 22; 18; 9; 60; 11; 25; 8; 14; 33; 27 |] in
  let categories = [| 1; 2; 1; 3; 1; 2; 4; 1; 2; 1; 5; 3; 1; 2; 1; 4 |] in
  let query = 1 in
  let expected =
    Array.to_list (Array.mapi (fun i a -> if categories.(i) = query then a else 0) amounts)
    |> List.fold_left ( + ) 0
  in

  Format.printf "client: table of %d expenses; querying category %d (true answer: %d)@."
    (Array.length amounts) query expected;
  let client, cloud = Client.keygen ~params:Pytfhe_tfhe.Params.test () in
  let bits =
    Array.concat
      [
        Array.concat (Array.to_list (Array.map (fun v -> Array.init 8 (fun i -> (v asr i) land 1 = 1)) amounts));
        Array.concat (Array.to_list (Array.map (fun v -> Array.init 3 (fun i -> (v asr i) land 1 = 1)) categories));
        Array.init 3 (fun i -> (query asr i) land 1 = 1);
      ]
  in
  let request = Client.encrypt_bits client bits in
  Format.printf "client: encrypted %d bits -> %d ciphertexts@." (Array.length bits)
    (Array.length request);

  Format.printf "server: evaluating %d bootstrapped gates homomorphically ...@."
    compiled.Pipeline.stats.Pytfhe_circuit.Stats.bootstraps;
  let t0 = Unix.gettimeofday () in
  let response, stats = Server.run Server.Cpu cloud compiled request in
  Format.printf "server: done in %.1fs (%d bootstraps) — it never saw a plaintext@."
    (Unix.gettimeofday () -. t0) stats.Pytfhe_backend.Executor.bootstraps_executed;

  let out_bits = Client.decrypt_bits client response in
  let total = ref 0 in
  Array.iteri (fun i b -> if b then total := !total lor (1 lsl i)) out_bits;
  Format.printf "client: decrypted total = %d -> %s@." !total
    (if !total = expected then "CORRECT" else "WRONG")
