(* Privacy-preserving MNIST inference — the paper's headline application.

     dune exec examples/mnist_inference.exe [-- --size s|m|l]

   Builds the MNIST CNN with the ChiselTorch frontend (PyTorch-style layer
   list, Fixed(8,4) data type), compiles it to a TFHE program, runs a
   functional inference on a synthetic image, and prices the program on
   every backend of the paper's evaluation. *)

module Netlist = Pytfhe_circuit.Netlist
module Stats = Pytfhe_circuit.Stats
module Rng = Pytfhe_util.Rng
open Pytfhe_core
open Pytfhe_chiseltorch

(* Positionally independent flag lookup: "--size m" is recognized anywhere
   in argv, not only as the first argument. *)
let flag_value name default =
  let rec go = function
    | f :: v :: _ when f = name -> v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (List.tl (Array.to_list Sys.argv))

let () =
  let size = flag_value "--size" "s" in
  let name = "mnist_" ^ size in
  let workload =
    match Pytfhe_vipbench.Suite.find name with
    | Some w -> w
    | None -> failwith ("unknown size: " ^ size)
  in
  Format.printf "= ChiselTorch MNIST (%s) =@." name;
  Format.printf
    "model: Conv2d -> ReLU -> MaxPool2d(3,1) -> Flatten -> Linear(.,10), dtype Fixed(8,4)@.@.";

  let t0 = Unix.gettimeofday () in
  let compiled = Pipeline.compile_workload workload in
  Format.printf "%a" Pipeline.pp_summary compiled;
  Format.printf "frontend+synthesis+assembly: %.1fs@.@." (Unix.gettimeofday () -. t0);

  (* Functional inference on a synthetic image (see DESIGN.md: runtime and
     gate counts are shape-driven; pixel values never change them). *)
  let rng = Rng.create ~seed:7 () in
  let dtype = Dtype.Fixed { width = 8; frac = 4 } in
  let n_inputs = Netlist.input_count compiled.Pipeline.netlist in
  (* One input wire per pixel bit.  Round the pixel count up so a trailing
     partial byte still gets bits ([n_inputs / 8] silently dropped them
     whenever the input count was not a multiple of 8, and the evaluator
     then rejected the short array). *)
  let image = Array.init ((n_inputs + 7) / 8) (fun _ -> Rng.int rng 256) in
  let bits = Array.init n_inputs (fun i -> (image.(i / 8) asr (i mod 8)) land 1 = 1) in
  let outputs = Pytfhe_backend.Plain_eval.run compiled.Pipeline.netlist bits in
  let logits =
    List.init 10 (fun k ->
        let v = ref 0 in
        List.iteri (fun i (_, bit) -> if i / 8 = k && bit then v := !v lor (1 lsl (i mod 8))) outputs;
        Dtype.decode dtype !v)
  in
  (* Single fold, first class wins ties — the List.nth version was O(n²)
     and compared against a moving reference. *)
  let best =
    match logits with
    | [] -> 0
    | first :: rest ->
      let _, best, _ =
        List.fold_left
          (fun (i, bi, bv) l -> if l > bv then (i + 1, i, l) else (i + 1, bi, bv))
          (1, 0, first) rest
      in
      best
  in
  Format.printf "logits: %s@." (String.concat " " (List.map (Printf.sprintf "%+.2f") logits));
  Format.printf "predicted class: %d@.@." best;

  Format.printf "backend estimates (paper-calibrated cost model):@.";
  List.iter
    (fun backend ->
      Format.printf "  %-28s %10.1f s  (%6.1fx single core)@." (Server.sim_platform_name backend)
        (Server.estimate backend compiled)
        (Server.speedup_over_single_core backend compiled))
    [
      Server.Single_core;
      Server.Distributed { nodes = 1 };
      Server.Distributed { nodes = 4 };
      Server.Gpu_cufhe Pytfhe_backend.Cost_model.gpu_a5000;
      Server.Gpu Pytfhe_backend.Cost_model.gpu_a5000;
      Server.Gpu Pytfhe_backend.Cost_model.gpu_4090;
    ]
