(* Quickstart: the full privacy-preserving computation flow of the paper's
   Fig. 1 on a small circuit, with real TFHE ciphertexts.

     dune exec examples/quickstart.exe

   A client encrypts two 8-bit numbers; the server — holding only the cloud
   keyset — homomorphically evaluates an adder compiled through the PyTFHE
   pipeline; the client decrypts the sum.  Test parameters keep this fast;
   pass --paper-params to use the 128-bit-secure set (≈0.3 s per gate on
   this OCaml implementation). *)

module Netlist = Pytfhe_circuit.Netlist
open Pytfhe_core
open Pytfhe_hdl

let () =
  let params =
    if Array.exists (( = ) "--paper-params") Sys.argv then Pytfhe_tfhe.Params.default_128
    else Pytfhe_tfhe.Params.test
  in
  Format.printf "= PyTFHE quickstart =@.";
  Format.printf "parameters: %a@.@." Pytfhe_tfhe.Params.pp params;

  (* 1. Describe the computation as a circuit (here: an 8-bit adder built
     from the HDL layer; ChiselTorch models compile the same way). *)
  let net = Netlist.create () in
  let a = Bus.input net "a" 8 in
  let b = Bus.input net "b" 8 in
  Bus.output net "sum" (Arith.add net a b);

  (* 2. Compile: optimize, levelize, assemble the PyTFHE binary. *)
  let compiled = Pipeline.compile ~name:"add8" net in
  Format.printf "%a@." Pipeline.pp_summary compiled;

  (* 3. Client side: key generation and encryption. *)
  let client, cloud_keyset = Client.keygen ~params () in
  let x = 57 and y = 164 in
  let bits v = Array.init 8 (fun i -> (v asr i) land 1 = 1) in
  let ciphertexts = Client.encrypt_bits client (Array.append (bits x) (bits y)) in
  Format.printf "client: encrypted %d and %d (%d ciphertexts, %d bytes each)@." x y
    (Array.length ciphertexts)
    (Pytfhe_tfhe.Lwe.ciphertext_bytes ~n:params.Pytfhe_tfhe.Params.lwe.Pytfhe_tfhe.Params.n);

  (* 4. Server side: homomorphic evaluation with the cloud keyset only. *)
  let t0 = Unix.gettimeofday () in
  let outputs, stats = Server.run Server.Cpu cloud_keyset compiled ciphertexts in
  Format.printf "server: %d bootstrapped gates in %.2fs (%.1f ms/gate)@."
    stats.Pytfhe_backend.Executor.bootstraps_executed
    (Unix.gettimeofday () -. t0)
    (1000.0 *. stats.Pytfhe_backend.Executor.wall_time
    /. float_of_int (max 1 stats.Pytfhe_backend.Executor.bootstraps_executed));

  (* 5. Client decrypts. *)
  let out_bits = Client.decrypt_bits client outputs in
  let result = ref 0 in
  Array.iteri (fun i bit -> if bit then result := !result lor (1 lsl i)) out_bits;
  Format.printf "client: decrypted sum = %d (expected %d) -> %s@." !result ((x + y) land 0xFF)
    (if !result = (x + y) land 0xFF then "OK" else "WRONG")
