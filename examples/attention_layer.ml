(* A BERT-style self-attention layer over encrypted activations — the
   paper's demonstration (§V-A) that non-native layers compose from the
   ChiselTorch tensor primitives (reshape/transpose/matmul of Table I).

     dune exec examples/attention_layer.exe [-- --hidden 32|64]  *)

module Netlist = Pytfhe_circuit.Netlist
module Rng = Pytfhe_util.Rng
open Pytfhe_core
open Pytfhe_chiseltorch

(* Positionally independent flag lookup: "--hidden 64" is recognized
   anywhere in argv, not only as the first argument. *)
let flag_value name default =
  let rec go = function
    | f :: v :: _ when f = name -> v
    | _ :: rest -> go rest
    | [] -> default
  in
  go (List.tl (Array.to_list Sys.argv))

let () =
  let hidden = int_of_string (flag_value "--hidden" "32") in
  let seq_len = 8 in
  Format.printf "= Self-attention (seq %d, hidden %d) =@." seq_len hidden;
  let cfg = { Attention.seq_len; hidden } in
  let weights = Attention.random_weights (Rng.create ~seed:11 ()) cfg in
  let dtype = Dtype.Fixed { width = 8; frac = 4 } in

  let t0 = Unix.gettimeofday () in
  let net = Netlist.create () in
  let x = Tensor.input net "x" dtype [| seq_len; hidden |] in
  (* Q/K/V projections, QKᵀ scores, scaled-ReLU normalisation (the
     documented softmax substitution), value aggregation. *)
  let y = Attention.build net cfg weights x in
  Tensor.output net "y" y;
  Format.printf "built with tensor primitives in %.1fs@." (Unix.gettimeofday () -. t0);

  let compiled = Pipeline.compile ~name:(Printf.sprintf "attention_h%d" hidden) net in
  Format.printf "%a@." Pipeline.pp_summary compiled;

  Format.printf "backend estimates:@.";
  List.iter
    (fun backend ->
      Format.printf "  %-28s %10.1f s  (%6.1fx single core)@." (Server.sim_platform_name backend)
        (Server.estimate backend compiled)
        (Server.speedup_over_single_core backend compiled))
    [
      Server.Single_core;
      Server.Distributed { nodes = 4 };
      Server.Gpu Pytfhe_backend.Cost_model.gpu_a5000;
      Server.Gpu Pytfhe_backend.Cost_model.gpu_4090;
    ]
